//! Multi-view (MV) baselines: AnomMAN and DualGAD — the only baselines
//! that, like UMGAD, consume the multiplex structure directly.

use std::sync::Arc;

use umgad_graph::MultiplexGraph;
use umgad_nn::{Activation, Gcn, RelationWeights};
use umgad_tensor::{cosine, Adam, Matrix, Tape};

use crate::common::{mix_errors, row_errors, union_view, BaselineConfig, Category, Detector};

/// **AnomMAN** [Inf. Sciences'23] — per-relation GCN autoencoders whose
/// reconstruction errors are fused by a learned attention over views. The
/// closest prior art to UMGAD: it sees the multiplex structure but lacks
/// masking, augmented views, and the contrastive coupling.
pub struct AnomMan {
    cfg: BaselineConfig,
}

impl AnomMan {
    /// Standard configuration.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg }
    }
}

impl Detector for AnomMan {
    fn name(&self) -> &'static str {
        "AnomMAN"
    }

    fn category(&self) -> Category {
        Category::MultiView
    }

    fn fit_scores(&mut self, graph: &MultiplexGraph) -> Vec<f64> {
        let f = graph.attr_dim();
        let rr = graph.num_relations();
        let mut rng = self.cfg.rng(0xa303);
        let mut aes: Vec<Gcn> = (0..rr)
            .map(|_| {
                Gcn::new(
                    &[f, self.cfg.hidden, f],
                    Activation::Relu,
                    Activation::None,
                    &mut rng,
                )
            })
            .collect();
        let mut attn = RelationWeights::new(rr, &mut rng);
        let target = Arc::new((**graph.attrs()).clone());
        let opt = Adam {
            lr: self.cfg.lr,
            weight_decay: self.cfg.weight_decay,
            ..Adam::default()
        };
        let pairs: Vec<_> = graph.layers().iter().map(|l| l.norm_pair()).collect();

        let mut fused_recon = (**graph.attrs()).clone();
        for _ in 0..self.cfg.epochs {
            let mut tape = Tape::new();
            let bounds: Vec<_> = aes.iter().map(|a| a.bind(&mut tape)).collect();
            let ba = attn.bind(&mut tape);
            let xv = tape.constant((**graph.attrs()).clone());
            let recons: Vec<_> = aes
                .iter()
                .zip(&bounds)
                .zip(&pairs)
                .map(|((ae, b), p)| ae.forward(&mut tape, b, p, xv))
                .collect();
            let fused = attn.fuse(&mut tape, &ba, &recons);
            let loss = tape.mse_loss(fused, Arc::clone(&target));
            tape.backward(loss);
            for (ae, b) in aes.iter_mut().zip(&bounds) {
                ae.update(&tape, b, &opt);
            }
            attn.update(&tape, &ba, &opt);
            fused_recon = tape.value(fused).clone();
        }
        // Score: fused attribute error + per-relation structure error from
        // the fused reconstruction as embedding.
        let attr_err = row_errors(&fused_recon, graph.attrs());
        let mut zn = fused_recon;
        for i in 0..zn.rows() {
            let norm = zn.row_norm(i);
            if norm > 1e-12 {
                for v in zn.row_mut(i) {
                    *v /= norm;
                }
            }
        }
        let n = graph.num_nodes();
        let mut struct_err = vec![0.0; n];
        let weights = attn.current();
        for (r, w) in weights.iter().enumerate() {
            let errs = umgad_core::structure_errors_layer(
                &zn,
                graph.layer(r),
                r as u64,
                &self.cfg.score_opts(),
            );
            for (s, e) in struct_err.iter_mut().zip(errs) {
                *s += w * e;
            }
        }
        mix_errors(attr_err, struct_err, self.cfg.alpha)
    }
}

/// **DualGAD** [Inf. Sciences'24] — dual-bootstrapped self-supervision:
/// a generative stream (subgraph reconstruction per relation) and a
/// contrastive stream (cross-relation agreement of node embeddings),
/// combined. Nodes whose embeddings *disagree across relations* are
/// anomalous even when each single-relation reconstruction looks clean.
pub struct DualGad {
    cfg: BaselineConfig,
}

impl DualGad {
    /// Standard configuration.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg }
    }
}

impl Detector for DualGad {
    fn name(&self) -> &'static str {
        "DualGAD"
    }

    fn category(&self) -> Category {
        Category::MultiView
    }

    fn fit_scores(&mut self, graph: &MultiplexGraph) -> Vec<f64> {
        let f = graph.attr_dim();
        let rr = graph.num_relations();
        let n = graph.num_nodes();
        let mut rng = self.cfg.rng(0xd0a1);
        let mut aes: Vec<Gcn> = (0..rr)
            .map(|_| {
                Gcn::new(
                    &[f, self.cfg.hidden, f],
                    Activation::Relu,
                    Activation::None,
                    &mut rng,
                )
            })
            .collect();
        let target = Arc::new((**graph.attrs()).clone());
        let opt = Adam {
            lr: self.cfg.lr,
            weight_decay: self.cfg.weight_decay,
            ..Adam::default()
        };
        let pairs: Vec<_> = graph.layers().iter().map(|l| l.norm_pair()).collect();

        let mut recons: Vec<Matrix> = vec![(**graph.attrs()).clone(); rr];
        for _ in 0..self.cfg.epochs {
            let mut tape = Tape::new();
            let bounds: Vec<_> = aes.iter().map(|a| a.bind(&mut tape)).collect();
            let xv = tape.constant((**graph.attrs()).clone());
            let outs: Vec<_> = aes
                .iter()
                .zip(&bounds)
                .zip(&pairs)
                .map(|((ae, b), p)| ae.forward(&mut tape, b, p, xv))
                .collect();
            // Generative losses plus pairwise cross-relation contrast.
            let mut loss = None;
            for &o in &outs {
                let l = tape.mse_loss(o, Arc::clone(&target));
                loss = Some(match loss {
                    Some(acc) => tape.add(acc, l),
                    None => l,
                });
            }
            if rr >= 2 {
                let q = 2;
                for r in 1..rr {
                    let a = tape.row_normalize(outs[0]);
                    let b = tape.row_normalize(outs[r]);
                    let negs = Arc::new(umgad_graph::contrast_indices(n, q, &mut rng));
                    let l = tape.info_nce_loss(a, b, negs, q, 1.0);
                    let l = tape.scale(l, 0.2);
                    loss = Some(match loss {
                        Some(acc) => tape.add(acc, l),
                        None => l,
                    });
                }
            }
            let loss = loss.expect("at least one relation");
            tape.backward(loss);
            for ((ae, b), slot) in aes.iter_mut().zip(&bounds).zip(recons.iter_mut()) {
                ae.update(&tape, b, &opt);
                let _ = slot;
            }
            for (slot, &o) in recons.iter_mut().zip(&outs) {
                *slot = tape.value(o).clone();
            }
        }
        // Generative error (mean across relations) + cross-relation
        // disagreement.
        let mut gen_err = vec![0.0; n];
        for recon in &recons {
            for (g, e) in gen_err.iter_mut().zip(row_errors(recon, graph.attrs())) {
                *g += e / rr as f64;
            }
        }
        let mut disagree = vec![0.0; n];
        if rr >= 2 {
            let mut pairs_count = 0.0;
            for a in 0..rr {
                for b in a + 1..rr {
                    for (i, d) in disagree.iter_mut().enumerate() {
                        *d += 1.0 - cosine(recons[a].row(i), recons[b].row(i));
                    }
                    pairs_count += 1.0;
                }
            }
            for d in &mut disagree {
                *d /= pairs_count;
            }
        }
        let _ = union_view(graph);
        mix_errors(gen_err, disagree, 0.6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umgad_graph::RelationLayer;
    use umgad_rt::rand::rngs::SmallRng;
    use umgad_rt::rand::{Rng, SeedableRng};

    fn planted_multiplex() -> MultiplexGraph {
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 90;
        let comm = |i: usize| i / 30;
        let mut attrs = Matrix::from_fn(n, 6, |i, j| if comm(i) == j % 3 { 1.0 } else { 0.0 });
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        for i in 0..n {
            for _ in 0..3 {
                let j = comm(i) * 30 + rng.gen_range(0..30);
                if i != j {
                    e1.push((i.min(j) as u32, i.max(j) as u32));
                }
            }
            let j = comm(i) * 30 + rng.gen_range(0..30);
            if i != j {
                e2.push((i.min(j) as u32, i.max(j) as u32));
            }
        }
        // Clique planted in relation "a" ONLY — cross-relation disagreement
        // is exactly the signal DualGAD mines.
        let clique = [0usize, 31, 61, 15];
        for (a, &u) in clique.iter().enumerate() {
            for &v in &clique[a + 1..] {
                e1.push((u.min(v) as u32, u.max(v) as u32));
            }
        }
        attrs.set_row(70, &[5.0, -5.0, 5.0, -5.0, 5.0, -5.0]);
        let mut labels = vec![false; n];
        for &c in &clique {
            labels[c] = true;
        }
        labels[70] = true;
        MultiplexGraph::new(
            attrs,
            vec![
                RelationLayer::new("a", n, e1),
                RelationLayer::new("b", n, e2),
            ],
            Some(labels),
        )
    }

    #[test]
    fn anomman_detects() {
        let g = planted_multiplex();
        let scores = AnomMan::new(BaselineConfig::fast_test()).fit_scores(&g);
        let auc = umgad_core::roc_auc(&scores, g.labels().unwrap());
        assert!(auc > 0.6, "AnomMAN AUC {auc}");
    }

    #[test]
    fn dualgad_detects() {
        let g = planted_multiplex();
        let scores = DualGad::new(BaselineConfig::fast_test()).fit_scores(&g);
        let auc = umgad_core::roc_auc(&scores, g.labels().unwrap());
        assert!(auc > 0.55, "DualGAD AUC {auc}");
    }
}
