//! # umgad-baselines
//!
//! Functional, simplified Rust re-implementations of the unsupervised GAD
//! baselines UMGAD is compared against in Tables II/IV — one per paper
//! category plus the strongest members of each:
//!
//! | Category | Detectors |
//! |---|---|
//! | Traditional | Radar |
//! | MPI | ComGA, RAND, TAM |
//! | CL | CoLA, ANEMONE, Sub-CR, ARISE, SL-GAD, PREM, GCCAD, GRADATE, VGOD |
//! | GAE | DOMINANT, GCNAE, AnomalyDAE, AdONE, GAD-NR, ADA-GAD, GADAM |
//! | MV | AnomMAN, DualGAD |
//!
//! Every detector keeps the mechanism its paper is known for (masking /
//! truncation / dual decoders / attention fusion / …) but is simplified to
//! full-batch CPU training — mechanism fidelity is what shapes the method
//! ranking the paper reports, and that is what the `repro` harness checks.
//!
//! ## Example
//!
//! ```no_run
//! use umgad_baselines::{registry, BaselineConfig, Detector};
//! use umgad_data::{Dataset, DatasetKind, Scale};
//!
//! let data = Dataset::generate(DatasetKind::Retail, Scale::Tiny, 7);
//! for mut det in registry(BaselineConfig::fast_test()) {
//!     let scores = det.fit_scores(&data.graph);
//!     let auc = umgad_core::roc_auc(&scores, data.graph.labels().unwrap());
//!     println!("{:<10} AUC {auc:.3}", det.name());
//! }
//! ```

#![warn(missing_docs)]

pub mod common;
pub mod contrastive;
pub mod gae;
pub mod mpi;
pub mod multiview;
pub mod traditional;

pub use common::{BaselineConfig, Category, Detector};
pub use contrastive::{Anemone, Arise, Cola, Gccad, Gradate, Prem, SlGad, SubCr, Vgod};
pub use gae::{AdOne, AdaGad, AnomalyDae, Dominant, GadNr, GcnAe};
pub use mpi::{ComGa, Gadam, Rand, Tam};
pub use multiview::{AnomMan, DualGad};

/// All baselines in Table II row order.
pub fn registry(cfg: BaselineConfig) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(traditional::Radar::new(cfg)),
        Box::new(ComGa::new(cfg)),
        Box::new(Rand::new(cfg)),
        Box::new(Tam::new(cfg)),
        Box::new(Cola::new(cfg)),
        Box::new(Anemone::new(cfg)),
        Box::new(SubCr::new(cfg)),
        Box::new(Arise::new(cfg)),
        Box::new(SlGad::new(cfg)),
        Box::new(Prem::new(cfg)),
        Box::new(Gccad::new(cfg)),
        Box::new(Gradate::new(cfg)),
        Box::new(Vgod::new(cfg)),
        Box::new(Dominant::new(cfg)),
        Box::new(GcnAe::new(cfg)),
        Box::new(AnomalyDae::new(cfg)),
        Box::new(AdOne::new(cfg)),
        Box::new(GadNr::new(cfg)),
        Box::new(AdaGad::new(cfg)),
        Box::new(Gadam::new(cfg)),
        Box::new(AnomMan::new(cfg)),
        Box::new(DualGad::new(cfg)),
    ]
}

/// The five best-performing baselines the paper highlights in Fig. 2/6.
pub fn top_baselines(cfg: BaselineConfig) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(Tam::new(cfg)),
        Box::new(AdaGad::new(cfg)),
        Box::new(Gadam::new(cfg)),
        Box::new(AnomMan::new(cfg)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table2_rows() {
        let r = registry(BaselineConfig::fast_test());
        assert_eq!(r.len(), 22);
        assert_eq!(r[0].name(), "Radar");
        assert_eq!(r[21].name(), "DualGAD");
        // Category ordering: Trad, then MPI, CL, GAE, MV blocks.
        assert_eq!(r[0].category(), Category::Traditional);
        assert_eq!(r[1].category(), Category::Mpi);
        assert_eq!(r[4].category(), Category::Contrastive);
        assert_eq!(r[13].category(), Category::Gae);
        assert_eq!(r[20].category(), Category::MultiView);
    }

    #[test]
    fn names_are_unique() {
        let r = registry(BaselineConfig::fast_test());
        let names: std::collections::HashSet<_> = r.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), r.len());
    }
}
