//! # umgad
//!
//! Facade crate for the full UMGAD reproduction — *Unsupervised Multiplex
//! Graph Anomaly Detection* (ICDE 2025) — re-exporting every sub-crate
//! under one roof:
//!
//! - [`tensor`]: dense/CSR `f64` engine with reverse-mode autograd;
//! - [`graph`]: multiplex heterogeneous graphs, RWR sampling, masking;
//! - [`data`]: statistical twins of the four evaluation datasets plus the
//!   paper's anomaly-injection protocol;
//! - [`nn`]: Simplified-GCN stacks, graph-masked autoencoders, relation
//!   fusion;
//! - [`core`]: the UMGAD model, unsupervised threshold selection, metrics;
//! - [`baselines`]: 22 simplified baseline detectors across the paper's
//!   five method families.
//!
//! ## Quickstart
//!
//! ```no_run
//! use umgad::prelude::*;
//!
//! // A statistical twin of the Retail_Rocket benchmark at test scale.
//! let data = Dataset::generate(DatasetKind::Retail, Scale::Tiny, 42);
//!
//! // Train UMGAD and detect without any ground-truth leakage.
//! let detection = Umgad::fit_detect(&data.graph, UmgadConfig::fast_test());
//! println!(
//!     "AUC {:.3}, Macro-F1 {:.3}, flagged {} of {} true anomalies",
//!     detection.auc,
//!     detection.macro_f1,
//!     detection.flagged,
//!     data.graph.num_anomalies(),
//! );
//! ```

#![warn(missing_docs)]

pub use umgad_baselines as baselines;
pub use umgad_core as core;
pub use umgad_data as data;
pub use umgad_graph as graph;
pub use umgad_nn as nn;
pub use umgad_tensor as tensor;

/// One-stop imports for applications.
pub mod prelude {
    pub use umgad_baselines::{registry, BaselineConfig, Category, Detector};
    pub use umgad_core::{
        average_precision, precision_at_k, recall_at_k, roc_auc, select_threshold, Ablation,
        Detection, ParkedModel, ScoreBatch, ScoreExplanation, ThresholdDecision, Umgad,
        UmgadConfig,
    };
    pub use umgad_data::{Dataset, DatasetKind, DatasetStats, Scale};
    pub use umgad_graph::{MultiplexGraph, RelationLayer};
    pub use umgad_tensor::Matrix;
}
