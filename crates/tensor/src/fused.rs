//! Fused SGC layer tail: `act((A @ x) @ w + bias)` in one pass over the
//! output rows.
//!
//! The unfused chain materialises two full intermediates per layer (the
//! propagated features `A @ x` and the pre-bias product `h @ w`) and then
//! walks the output twice more for the bias add and the activation. The
//! fused kernel computes each output row end to end while it is
//! cache-resident: one CSR row accumulation, one `i-k-j` row product, then
//! bias and activation in place.
//!
//! **Bitwise contract.** Every number here is produced by the exact
//! arithmetic of the unfused kernels: the propagation row accumulates in
//! CSR order ([`CsrMatrix`] `spmm_row_into`), the product row accumulates
//! over `k` ascending with the same `a == 0.0` skip as
//! [`Matrix::matmul_serial`], bias and activation are the same per-element
//! expressions as `Tape::add_row` and the activation ops. Output rows are
//! independent, so the parallel path partitions rows and stays bitwise
//! identical at any thread count — the same argument as DESIGN.md §5c.

use crate::matrix::{madds, Matrix, PARALLEL_MIN_FLOPS};
use crate::sparse::CsrMatrix;

/// Activation fused into the layer-tail kernel. The variants mirror the
/// tape's activation ops exactly, element for element.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FusedAct {
    /// Identity.
    None,
    /// `max(t, 0)`.
    Relu,
    /// `t > 0 ? t : alpha * t`.
    LeakyRelu(f64),
    /// `t > 0 ? t : alpha * (e^t - 1)`.
    Elu(f64),
    /// `tanh(t)`.
    Tanh,
}

impl FusedAct {
    /// Forward, per element. Expressions match the tape ops bit for bit.
    #[inline]
    pub fn apply(self, t: f64) -> f64 {
        match self {
            FusedAct::None => t,
            FusedAct::Relu => t.max(0.0),
            FusedAct::LeakyRelu(alpha) => {
                if t > 0.0 {
                    t
                } else {
                    alpha * t
                }
            }
            FusedAct::Elu(alpha) => {
                if t > 0.0 {
                    t
                } else {
                    alpha * (t.exp() - 1.0)
                }
            }
            FusedAct::Tanh => t.tanh(),
        }
    }

    /// Whether the backward pass needs the pre-activation input stored:
    /// Elu's negative branch cannot be recovered from the output, and a
    /// LeakyRelu with `alpha <= 0` loses the input's sign.
    pub fn needs_preactivation(self) -> bool {
        match self {
            FusedAct::Elu(_) => true,
            FusedAct::LeakyRelu(alpha) => alpha <= 0.0,
            _ => false,
        }
    }

    /// Backward, per element: upstream gradient `g`, layer output `y`, and
    /// pre-activation `z` (only read when [`Self::needs_preactivation`]).
    /// Each arm reproduces the matching tape op's backward expression
    /// exactly — including which branches multiply and which pass `g`
    /// through untouched.
    #[inline]
    pub fn apply_grad(self, g: f64, y: f64, z: f64) -> f64 {
        match self {
            FusedAct::None => g,
            FusedAct::Relu => {
                // y > 0 ⟺ z > 0 for y = max(z, 0).
                if y > 0.0 {
                    g
                } else {
                    0.0
                }
            }
            FusedAct::LeakyRelu(alpha) => {
                let positive = if self.needs_preactivation() {
                    z > 0.0
                } else {
                    // alpha > 0 keeps the sign, so y > 0 ⟺ z > 0.
                    y > 0.0
                };
                if positive {
                    g
                } else {
                    g * alpha
                }
            }
            FusedAct::Elu(alpha) => {
                if z > 0.0 {
                    g
                } else {
                    g * alpha * z.exp()
                }
            }
            FusedAct::Tanh => g * (1.0 - y * y),
        }
    }
}

/// Multiply-add count of the fused pass: the propagation (when present)
/// plus the dense product.
fn fused_madds(adj: Option<&CsrMatrix>, x: &Matrix, d: usize) -> usize {
    let prop = adj.map_or(0, |a| madds(a.nnz(), x.cols(), 1));
    prop.saturating_add(madds(x.rows(), x.cols(), d))
}

/// One row range `[r0, r0 + block_rows)` of the fused pass.
///
/// `h_block` (propagated features, present iff `adj` is) and `z_block`
/// (pre-activation, present when the activation's backward needs it) are
/// fully overwritten; `y_block` receives the activated output.
#[allow(clippy::too_many_arguments)]
fn fused_rows(
    adj: Option<&CsrMatrix>,
    x: &Matrix,
    w: &Matrix,
    bias: &[f64],
    act: FusedAct,
    r0: usize,
    mut h_block: Option<&mut [f64]>,
    mut z_block: Option<&mut [f64]>,
    y_block: &mut [f64],
) {
    let f = x.cols();
    let d = w.cols();
    if d == 0 {
        if let Some(h) = h_block.as_deref_mut() {
            propagate_block(adj, x, r0, h);
        }
        return;
    }
    let rows = y_block.len() / d;
    for i in 0..rows {
        let r = r0 + i;
        // Propagated features for this row: a CSR accumulation into the
        // stored h row, or x's row directly when there is no propagation.
        let hrow: &[f64] = match (adj, h_block.as_deref_mut()) {
            (Some(adj), Some(h)) => {
                let hrow = &mut h[i * f..(i + 1) * f];
                hrow.fill(0.0);
                adj.spmm_row_into(x, r, hrow);
                hrow
            }
            _ => x.row(r),
        };
        // Product row: k ascending, two `k` panels folded per pass over the
        // output row (half the store traffic; each element still accumulates
        // one `+=` at a time in ascending-`k` order). Folding an exact-zero
        // `a` is a bitwise no-op here — the accumulator can never be `-0.0`
        // (it starts at `+0.0` and `+0.0 + ±0.0 = +0.0`), so this matches
        // `matmul_serial`'s zero-skip output bit for bit on finite inputs.
        let yrow = &mut y_block[i * d..(i + 1) * d];
        yrow.fill(0.0);
        let paired = f & !1;
        let mut k = 0;
        while k < paired {
            let (a0, a1) = (hrow[k], hrow[k + 1]);
            if a0 == 0.0 && a1 == 0.0 {
                k += 2;
                continue;
            }
            let w0 = w.row(k);
            let w1 = w.row(k + 1);
            for ((o, &b0), &b1) in yrow.iter_mut().zip(w0).zip(w1) {
                let t = *o + a0 * b0;
                *o = t + a1 * b1;
            }
            k += 2;
        }
        if k < f && hrow[k] != 0.0 {
            let wrow = w.row(k);
            let a = hrow[k];
            for (o, &b) in yrow.iter_mut().zip(wrow) {
                *o += a * b;
            }
        }
        // Bias: one add per element, as add_row.
        for (o, &b) in yrow.iter_mut().zip(bias) {
            *o += b;
        }
        if let Some(z) = z_block.as_deref_mut() {
            z[i * d..(i + 1) * d].copy_from_slice(yrow);
        }
        for o in yrow.iter_mut() {
            *o = act.apply(*o);
        }
    }
}

/// Fill `h_block` with the propagated rows alone (the `d == 0` degenerate
/// path, where no product rows exist to drive the main loop).
fn propagate_block(adj: Option<&CsrMatrix>, x: &Matrix, r0: usize, h_block: &mut [f64]) {
    let f = x.cols();
    if f == 0 {
        return;
    }
    let Some(adj) = adj else {
        return;
    };
    for (i, hrow) in h_block.chunks_exact_mut(f).enumerate() {
        hrow.fill(0.0);
        adj.spmm_row_into(x, r0 + i, hrow);
    }
}

/// Row boundaries (length `parts + 1`) balancing `row_nnz + w_cols` per
/// row, so hub rows of a skewed `adj` don't serialise the pass the way an
/// even row split would.
fn fused_partitions(adj: Option<&CsrMatrix>, rows: usize, d: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    let cum = |r: usize| adj.map_or(0, |a| a.row_ptr()[r]) + r * d.max(1);
    let total = cum(rows);
    for p in 1..parts {
        let target = total * p / parts;
        // cum is monotone in r; find the first row reaching the target.
        let (mut lo, mut hi) = (0usize, rows);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if cum(mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        bounds.push(lo.max(*bounds.last().unwrap()));
    }
    bounds.push(rows);
    bounds
}

/// Fused `act((adj @ x) @ w + bias)` into caller-provided storage.
///
/// - `h` must be `Some` with shape `rows(adj) × cols(x)` iff `adj` is
///   `Some`; it receives the propagated features (stored for the backward's
///   `dW = h^T @ dz`).
/// - `z` (same shape as `y`) receives the pre-activation when provided —
///   required when `act.needs_preactivation()`.
/// - `y` (`n × cols(w)`) receives the activated output.
///
/// All provided buffers are fully overwritten; stale contents are fine.
/// Dispatches to the row-partitioned pool path above
/// [`PARALLEL_MIN_FLOPS`]; both paths are bitwise identical.
#[allow(clippy::too_many_arguments)]
pub fn spmm_bias_act_into(
    adj: Option<&CsrMatrix>,
    x: &Matrix,
    w: &Matrix,
    bias: &[f64],
    act: FusedAct,
    mut h: Option<&mut Matrix>,
    mut z: Option<&mut Matrix>,
    y: &mut Matrix,
    threads: usize,
) {
    let _span = umgad_rt::telemetry::span("kernel.fused");
    let (n, f) = x.shape();
    let d = w.cols();
    assert_eq!(w.rows(), f, "spmm_bias_act: x {n}x{f} @ w {}x{d}", w.rows());
    assert_eq!(bias.len(), d, "spmm_bias_act: bias length");
    assert_eq!(y.shape(), (n, d), "spmm_bias_act: output shape");
    if let Some(adj) = adj {
        assert_eq!(adj.rows(), n, "spmm_bias_act: adj rows");
        assert_eq!(adj.cols(), n, "spmm_bias_act: adj cols");
    }
    assert_eq!(adj.is_some(), h.is_some(), "spmm_bias_act: h iff adj");
    if let Some(h) = h.as_deref_mut() {
        assert_eq!(h.shape(), (n, f), "spmm_bias_act: h shape");
    }
    if let Some(z) = z.as_deref_mut() {
        assert_eq!(z.shape(), (n, d), "spmm_bias_act: z shape");
    }
    assert!(
        !act.needs_preactivation() || z.is_some(),
        "spmm_bias_act: {act:?} needs the pre-activation stored"
    );

    if threads <= 1 || fused_madds(adj, x, d) < PARALLEL_MIN_FLOPS {
        fused_rows(
            adj,
            x,
            w,
            bias,
            act,
            0,
            h.map(|m| &mut m.data_mut()[..]),
            z.map(|m| &mut m.data_mut()[..]),
            y.data_mut(),
        );
        return;
    }

    let bounds = fused_partitions(adj, n, d, threads);
    let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(bounds.len() - 1);
    let mut h_rest = h.map(|m| &mut m.data_mut()[..]);
    let mut z_rest = z.map(|m| &mut m.data_mut()[..]);
    let mut y_rest: &mut [f64] = y.data_mut();
    for wnd in bounds.windows(2) {
        let (r0, r1) = (wnd[0], wnd[1]);
        let rows = r1 - r0;
        let h_block = h_rest.take().map(|rest| {
            let (block, tail) = rest.split_at_mut(rows * f);
            h_rest = Some(tail);
            block
        });
        let z_block = z_rest.take().map(|rest| {
            let (block, tail) = rest.split_at_mut(rows * d);
            z_rest = Some(tail);
            block
        });
        let (y_block, tail) = y_rest.split_at_mut(rows * d);
        y_rest = tail;
        jobs.push(Box::new(move || {
            fused_rows(adj, x, w, bias, act, r0, h_block, z_block, y_block);
        }));
    }
    umgad_rt::pool::global().run(jobs);
}

/// Allocating convenience wrapper for tape-free inference: returns the
/// activated output, discarding the propagated features. Bitwise identical
/// to the unfused `spmm → matmul → bias → act` chain.
pub fn spmm_bias_act(
    adj: Option<&CsrMatrix>,
    x: &Matrix,
    w: &Matrix,
    bias: &[f64],
    act: FusedAct,
) -> Matrix {
    let mut h = adj.map(|a| Matrix::zeros(a.rows(), x.cols()));
    let mut y = Matrix::zeros(x.rows(), w.cols());
    let mut z = act
        .needs_preactivation()
        .then(|| Matrix::zeros(x.rows(), w.cols()));
    spmm_bias_act_into(
        adj,
        x,
        w,
        bias,
        act,
        h.as_mut(),
        z.as_mut(),
        &mut y,
        crate::parallel::default_threads(),
    );
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr_line(n: usize) -> CsrMatrix {
        // Path graph with self-loops and varied weights.
        let mut triples = Vec::new();
        for i in 0..n {
            triples.push((i, i, 0.5 + i as f64 * 0.01));
            if i + 1 < n {
                triples.push((i, i + 1, 0.25));
                triples.push((i + 1, i, 0.3));
            }
        }
        CsrMatrix::from_coo(n, n, triples)
    }

    fn dense(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            let t = ((i * 31 + j * 7 + seed as usize) % 13) as f64 / 13.0 - 0.4;
            // Exact zeros exercise the zero-skip paths.
            if (i + j + seed as usize).is_multiple_of(5) {
                0.0
            } else {
                t
            }
        })
    }

    fn unfused(
        adj: Option<&CsrMatrix>,
        x: &Matrix,
        w: &Matrix,
        bias: &[f64],
        act: FusedAct,
    ) -> Matrix {
        let h = match adj {
            Some(a) => a.spmm(x),
            None => x.clone(),
        };
        let mut y = h.matmul(w);
        for i in 0..y.rows() {
            let row = y.row_mut(i);
            for (o, &b) in row.iter_mut().zip(bias) {
                *o += b;
            }
        }
        y.map_inplace(|t| act.apply(t));
        y
    }

    #[test]
    fn fused_matches_unfused_bitwise() {
        let n = 23;
        let adj = csr_line(n);
        let x = dense(n, 9, 1);
        let w = dense(9, 5, 2);
        let bias: Vec<f64> = (0..5).map(|j| j as f64 * 0.1 - 0.2).collect();
        for act in [
            FusedAct::None,
            FusedAct::Relu,
            FusedAct::LeakyRelu(0.2),
            FusedAct::Elu(1.0),
            FusedAct::Tanh,
        ] {
            for use_adj in [true, false] {
                let adj_ref = use_adj.then_some(&adj);
                let expect = unfused(adj_ref, &x, &w, &bias, act);
                let got = spmm_bias_act(adj_ref, &x, &w, &bias, act);
                assert_eq!(
                    got.data(),
                    expect.data(),
                    "act {act:?} use_adj {use_adj} diverged from the unfused chain"
                );
            }
        }
    }

    #[test]
    fn parallel_path_is_bitwise_identical() {
        let n = 61;
        let adj = csr_line(n);
        let x = dense(n, 17, 3);
        let w = dense(17, 11, 4);
        let bias = vec![0.05; 11];
        let act = FusedAct::Elu(1.0);
        let mut serial = (
            Matrix::zeros(n, 17),
            Matrix::zeros(n, 11),
            Matrix::zeros(n, 11),
        );
        spmm_bias_act_into(
            Some(&adj),
            &x,
            &w,
            &bias,
            act,
            Some(&mut serial.0),
            Some(&mut serial.1),
            &mut serial.2,
            1,
        );
        for threads in [2, 5, 8] {
            let mut h = Matrix::full(n, 17, f64::NAN); // stale contents must not leak
            let mut z = Matrix::full(n, 11, f64::NAN);
            let mut y = Matrix::full(n, 11, f64::NAN);
            spmm_bias_act_into(
                Some(&adj),
                &x,
                &w,
                &bias,
                act,
                Some(&mut h),
                Some(&mut z),
                &mut y,
                threads,
            );
            assert_eq!(h.data(), serial.0.data(), "h at {threads} threads");
            assert_eq!(z.data(), serial.1.data(), "z at {threads} threads");
            assert_eq!(y.data(), serial.2.data(), "y at {threads} threads");
        }
    }

    #[test]
    fn grad_arms_match_unfused_expressions() {
        let g = 0.7;
        for t in [-1.3, -0.2, 0.0, 0.4, 2.1] {
            let relu = FusedAct::Relu;
            assert_eq!(
                relu.apply_grad(g, relu.apply(t), t),
                if t > 0.0 { g } else { 0.0 }
            );
            let lrelu = FusedAct::LeakyRelu(0.2);
            assert_eq!(
                lrelu.apply_grad(g, lrelu.apply(t), t),
                if t > 0.0 { g } else { g * 0.2 }
            );
            let elu = FusedAct::Elu(1.0);
            assert_eq!(
                elu.apply_grad(g, elu.apply(t), t),
                if t > 0.0 { g } else { g * 1.0 * t.exp() }
            );
            let tanh = FusedAct::Tanh;
            let y = t.tanh();
            assert_eq!(tanh.apply_grad(g, y, t), g * (1.0 - y * y));
            assert_eq!(FusedAct::None.apply_grad(g, t, t), g);
        }
    }

    #[test]
    fn zero_hops_is_a_plain_linear_map() {
        let x = dense(7, 4, 5);
        let w = dense(4, 3, 6);
        let y = spmm_bias_act(None, &x, &w, &[0.0; 3], FusedAct::None);
        assert_eq!(y.data(), x.matmul(&w).data());
    }
}
