//! Minimal scoped-thread fork/join helper.
//!
//! UMGAD trains one graph-masked autoencoder per (relation, masking-repeat)
//! pair; those units are independent within a step, so the trainer fans them
//! out with [`parallel_map`]. Tapes are `!Send` by content choice (they hold
//! `Rc`s), so each worker builds its *own* tape — only inputs and outputs
//! cross threads.

/// Apply `f` to every item, distributing items over at most `threads`
/// OS threads. Order of results matches input order. With `threads <= 1`
/// (or a single item) this degrades to a plain serial map.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = threads.min(n);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    // Pair each item with its slot and hand out chunks.
    let tagged: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let chunk = n.div_ceil(workers);
    let results = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        let mut rest = tagged;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let batch: Vec<(usize, T)> = rest.drain(..take).collect();
            let f = &f;
            let results = &results;
            scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::with_capacity(batch.len());
                for (i, item) in batch {
                    local.push((i, f(item)));
                }
                let mut guard = results.lock().unwrap();
                for (i, r) in local {
                    guard[i] = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// Number of worker threads to use by default: available parallelism capped
/// at 8 (the workloads here are memory-bandwidth-bound beyond that).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 4, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_fallback() {
        let out = parallel_map(vec![1, 2, 3], 1, |x: i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![5], 16, |x: i32| x * x);
        assert_eq!(out, vec![25]);
    }
}
