//! Fork/join helpers on the shared worker pool.
//!
//! UMGAD trains one graph-masked autoencoder per (relation, masking-repeat)
//! pair; those units are independent within a step, so the trainer fans them
//! out with [`parallel_map`]. Tapes are `Send + Sync` (op metadata is held
//! in `Arc`s), but workers still build their *own* tapes — a tape records
//! sequentially, so only inputs and outputs cross threads.
//!
//! Work dispatches through [`umgad_rt::pool`]'s persistent global pool, so a
//! training loop that calls `parallel_map` (or a parallel kernel) every step
//! pays the thread-spawn cost once per process, not once per call.

use umgad_rt::pool;

/// Apply `f` to every item, distributing items over at most `threads`
/// lanes of the shared worker pool. Order of results matches input order.
/// With `threads <= 1` (or a single item) this degrades to a plain serial
/// map on the calling thread.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads.min(n));
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    {
        let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        let mut rest = items;
        let mut slot_rest: &mut [Option<R>] = &mut slots;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let batch: Vec<T> = rest.drain(..take).collect();
            let (slot_chunk, tail) = slot_rest.split_at_mut(take);
            slot_rest = tail;
            let f = &f;
            jobs.push(Box::new(move || {
                for (slot, item) in slot_chunk.iter_mut().zip(batch) {
                    *slot = Some(f(item));
                }
            }));
        }
        pool::global().run(jobs);
    }
    slots
        .into_iter()
        .map(|s| s.expect("pool ran every job to completion"))
        .collect()
}

/// Apply `f` to every row index in `0..n`, partitioning rows into contiguous
/// chunks over the shared worker pool. Results come back in row order, and
/// because each row is produced independently by a pure `f`, the output is
/// bitwise independent of `threads` — the same deterministic-partitioning
/// contract the scoring and serving paths rely on (DESIGN.md §5i).
pub fn parallel_rows<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let chunk = n.div_ceil(threads.max(1)).max(1);
    let starts: Vec<usize> = (0..n).step_by(chunk).collect();
    parallel_map(starts, threads, |start| {
        let end = (start + chunk).min(n);
        (start..end).map(&f).collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Number of worker lanes to use by default: the process-wide configured
/// parallelism (`UMGAD_THREADS` override, else available parallelism). See
/// [`umgad_rt::pool::configured_threads`].
pub fn default_threads() -> usize {
    pool::configured_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 4, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_fallback() {
        let out = parallel_map(vec![1, 2, 3], 1, |x: i32| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![5], 16, |x: i32| x * x);
        assert_eq!(out, vec![25]);
    }

    #[test]
    fn nested_parallel_maps_complete() {
        // A parallel_map whose jobs themselves call parallel_map must not
        // deadlock the shared pool (submitters help drain their batches).
        let out = parallel_map((0..6).collect(), 4, |i: usize| {
            parallel_map((0..5).collect(), 4, move |j: usize| i * 10 + j)
        });
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &(0..5).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_rows_matches_serial_at_any_thread_count() {
        let serial: Vec<usize> = (0..23).map(|i| i * i).collect();
        for threads in [1, 2, 4, 16, 64] {
            assert_eq!(parallel_rows(23, threads, |i| i * i), serial);
        }
        assert!(parallel_rows(0, 4, |i| i).is_empty());
    }

    #[test]
    fn default_threads_matches_pool_configuration() {
        assert_eq!(default_threads(), umgad_rt::pool::configured_threads());
        assert!(default_threads() >= 1);
    }
}
