//! Shape-keyed buffer arena: the allocator behind zero-churn epochs.
//!
//! Training builds the same tape shape every epoch, so every op-output
//! matrix a steady-state epoch needs has the exact size of one freed the
//! epoch before. [`BufferArena`] keeps those freed `Vec<f64>` backing
//! stores on a free-list keyed by element count; [`crate::Tape::recycle`]
//! drains a finished tape into the arena and the next epoch's ops draw from
//! it instead of the global allocator. After a warm-up epoch the happy path
//! performs **zero** matrix allocations — a property pinned by the
//! workspace allocation-regression test via [`BufferArena::stats`].
//!
//! The arena is deliberately dumb: no size classes, no trimming. Buffers
//! are keyed by exact length, so a hit always returns a store of precisely
//! the requested size and reuse never changes matrix shapes or contents
//! semantics (every constructor here either zero-fills or fully
//! overwrites).

use std::collections::HashMap;

use crate::matrix::Matrix;

/// Arena hit/miss counters. `misses` counts buffers that had to come from
/// the global allocator; a warm steady-state epoch keeps it flat.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers served from the free-list.
    pub hits: u64,
    /// Buffers that fell through to the global allocator.
    pub misses: u64,
}

/// Length-keyed free-list of matrix backing stores.
#[derive(Debug, Default)]
pub struct BufferArena {
    free: HashMap<usize, Vec<Vec<f64>>>,
    stats: ArenaStats,
}

impl BufferArena {
    /// Empty arena; every first request misses.
    pub fn new() -> Self {
        Self::default()
    }

    /// A backing store of exactly `len` elements with **unspecified
    /// contents** (stale values from a previous tenant on a hit). Callers
    /// must fully overwrite it.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        if let Some(buf) = self.free.get_mut(&len).and_then(Vec::pop) {
            self.stats.hits += 1;
            return buf;
        }
        self.stats.misses += 1;
        vec![0.0; len]
    }

    /// Return a store to the free-list. Zero-length stores are dropped
    /// (they never allocate in the first place).
    pub fn put_buf(&mut self, buf: Vec<f64>) {
        if !buf.is_empty() {
            self.free.entry(buf.len()).or_default().push(buf);
        }
    }

    /// Return a matrix's backing store to the free-list.
    pub fn put(&mut self, m: Matrix) {
        self.put_buf(m.into_data());
    }

    /// `rows × cols` zero matrix.
    pub fn zeros(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut buf = self.take(rows * cols);
        buf.fill(0.0);
        Matrix::from_vec(rows, cols, buf)
    }

    /// `rows × cols` matrix filled with `v`.
    pub fn full(&mut self, rows: usize, cols: usize, v: f64) -> Matrix {
        let mut buf = self.take(rows * cols);
        buf.fill(v);
        Matrix::from_vec(rows, cols, buf)
    }

    /// `1 × 1` matrix holding `v`.
    pub fn scalar(&mut self, v: f64) -> Matrix {
        self.full(1, 1, v)
    }

    /// Copy of `src`.
    pub fn copy_of(&mut self, src: &Matrix) -> Matrix {
        let mut buf = self.take(src.len());
        buf.copy_from_slice(src.data());
        Matrix::from_vec(src.rows(), src.cols(), buf)
    }

    /// Elementwise `f` over `src`.
    pub fn map_of(&mut self, src: &Matrix, f: impl Fn(f64) -> f64) -> Matrix {
        let mut buf = self.take(src.len());
        for (d, &s) in buf.iter_mut().zip(src.data()) {
            *d = f(s);
        }
        Matrix::from_vec(src.rows(), src.cols(), buf)
    }

    /// Elementwise `f` over two equally-shaped value slices, producing a
    /// `rows × cols` matrix.
    pub fn map2(
        &mut self,
        rows: usize,
        cols: usize,
        a: &[f64],
        b: &[f64],
        f: impl Fn(f64, f64) -> f64,
    ) -> Matrix {
        assert_eq!(a.len(), rows * cols);
        assert_eq!(b.len(), rows * cols);
        let mut buf = self.take(rows * cols);
        for ((d, &x), &y) in buf.iter_mut().zip(a).zip(b) {
            *d = f(x, y);
        }
        Matrix::from_vec(rows, cols, buf)
    }

    /// Pre-provision `count` additional free stores of length `len`.
    ///
    /// This is a *warm-up* API: it extends the arena's capacity for a code
    /// path that is about to run for the first time, so the path's own
    /// requests hit the free-list instead of falling through to the
    /// allocator mid-epoch. The stores are allocated here, deliberately
    /// outside the hit/miss accounting — `misses` keeps meaning "a demand
    /// the warm working set failed to anticipate".
    pub fn grow(&mut self, len: usize, count: usize) {
        if len == 0 {
            return;
        }
        let pool = self.free.entry(len).or_default();
        pool.reserve(count);
        for _ in 0..count {
            pool.push(vec![0.0; len]);
        }
    }

    /// Hit/miss counters since construction (or the last
    /// [`Self::reset_stats`]).
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Zero the hit/miss counters (the free-list is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = ArenaStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_is_keyed_by_exact_length() {
        let mut arena = BufferArena::new();
        let a = arena.zeros(2, 3);
        let b = arena.zeros(3, 2); // same length, different shape: same pool
        arena.put(a);
        arena.put(b);
        let c = arena.take(6);
        let d = arena.take(6);
        let e = arena.take(6);
        assert_eq!(c.len(), 6);
        assert_eq!(d.len(), 6);
        assert_eq!(e.len(), 6);
        assert_eq!(
            arena.stats(),
            ArenaStats { hits: 2, misses: 3 },
            "two warm buffers, three allocator trips"
        );
    }

    #[test]
    fn constructors_fully_define_contents() {
        let mut arena = BufferArena::new();
        let mut m = arena.full(2, 2, 7.0);
        m.data_mut().fill(42.0);
        arena.put(m);
        // A reused buffer must not leak its previous tenant's values.
        assert_eq!(arena.zeros(2, 2).data(), &[0.0; 4]);
        let src = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(arena.copy_of(&src).data(), src.data());
        assert_eq!(
            arena.map_of(&src, |v| v * 2.0).data(),
            &[2.0, 4.0, 6.0, 8.0]
        );
        let out = arena.map2(2, 2, src.data(), src.data(), |a, b| a + b);
        assert_eq!(out.data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn zero_length_buffers_are_not_pooled() {
        let mut arena = BufferArena::new();
        arena.put(Matrix::zeros(0, 4));
        let m = arena.zeros(0, 4);
        assert_eq!(m.shape(), (0, 4));
        assert_eq!(arena.stats().hits, 0);
    }
}
