//! # umgad-tensor
//!
//! A compact dense/CSR `f64` tensor engine with tape-based reverse-mode
//! automatic differentiation, purpose-built for the graph-masked-autoencoder
//! workloads of the UMGAD reproduction (ICDE 2025).
//!
//! The crate provides:
//!
//! - [`Matrix`]: dense row-major matrices with the handful of BLAS-like
//!   kernels GNN training needs (`matmul`, `matmul_tb`, `matmul_ta`,
//!   row gathers, element-wise maps);
//! - [`CsrMatrix`] / [`SpPair`]: immutable CSR sparse matrices and the
//!   forward/backward pair used by autograd sparse-dense products;
//! - [`Tape`] / [`Var`]: a define-by-run autodiff tape with primitive ops
//!   and the paper's composite losses (scaled cosine, negative-sampled edge
//!   cross-entropy, dual-view InfoNCE);
//! - [`BufferArena`]: a length-keyed free-list of matrix backing stores;
//!   tapes recycle every value/gradient buffer through it so steady-state
//!   training epochs allocate no matrices at all;
//! - [`FusedAct`] / [`spmm_bias_act`]: the fused SGC layer tail
//!   `act((A @ x) @ w + bias)` computed in one pass over the output rows,
//!   bitwise identical to the unfused op chain;
//! - [`Param`], [`Adam`], [`Sgd`]: parameters and optimisers;
//! - [`init`]: Xavier/normal initialisers;
//! - [`parallel_map`]: fork/join over the shared persistent worker pool
//!   ([`umgad_rt::pool`]) for per-subgraph autoencoders; the dense and CSR
//!   product kernels dispatch through the same pool above
//!   [`matrix::PARALLEL_MIN_FLOPS`] multiply-adds, with results bitwise
//!   independent of thread count.
//!
//! ## Example
//!
//! ```
//! use umgad_tensor::{Adam, Matrix, Param, Tape};
//! use std::sync::Arc;
//!
//! // Fit y = x @ w to a target with Adam. `recycle()` returns each step's
//! // buffers to the tape's arena, so steady-state steps allocate nothing.
//! let x = Matrix::from_fn(8, 3, |i, j| (i * 3 + j) as f64 / 10.0);
//! let target = Arc::new(Matrix::from_fn(8, 2, |i, j| (i + j) as f64 / 5.0));
//! let mut w = Param::new(Matrix::zeros(3, 2));
//! let opt = Adam::with_lr(0.05);
//! let mut last = f64::INFINITY;
//! let mut tape = Tape::new();
//! for _ in 0..100 {
//!     tape.recycle();
//!     let xv = tape.constant_from(&x);
//!     let wv = tape.leaf_from(&w.value);
//!     let y = tape.matmul(xv, wv);
//!     let loss = tape.mse_loss(y, Arc::clone(&target));
//!     tape.backward(loss);
//!     opt.step(&mut w, tape.grad(wv).unwrap());
//!     last = tape.value(loss).get(0, 0);
//! }
//! assert!(last < 0.05);
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod fused;
pub mod init;
pub mod matrix;
pub mod optim;
pub mod parallel;
pub mod sparse;
pub mod tape;

pub use arena::{ArenaStats, BufferArena};
pub use fused::{spmm_bias_act, FusedAct};
pub use matrix::{cosine, dot, l1_distance, l2_distance, Matrix, PARALLEL_MIN_FLOPS};
pub use optim::{clip_grad_norm, Adam, LrSchedule, Param, ParamState, Sgd};
pub use parallel::{default_threads, parallel_map, parallel_rows};
pub use sparse::{CsrMatrix, CsrStorage, SpPair, TransposeCache};
pub use tape::{sigmoid, Tape, Var};
