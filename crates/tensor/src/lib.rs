//! # umgad-tensor
//!
//! A compact dense/CSR `f64` tensor engine with tape-based reverse-mode
//! automatic differentiation, purpose-built for the graph-masked-autoencoder
//! workloads of the UMGAD reproduction (ICDE 2025).
//!
//! The crate provides:
//!
//! - [`Matrix`]: dense row-major matrices with the handful of BLAS-like
//!   kernels GNN training needs (`matmul`, `matmul_tb`, `matmul_ta`,
//!   row gathers, element-wise maps);
//! - [`CsrMatrix`] / [`SpPair`]: immutable CSR sparse matrices and the
//!   forward/backward pair used by autograd sparse-dense products;
//! - [`Tape`] / [`Var`]: a define-by-run autodiff tape with primitive ops
//!   and the paper's composite losses (scaled cosine, negative-sampled edge
//!   cross-entropy, dual-view InfoNCE);
//! - [`Param`], [`Adam`], [`Sgd`]: parameters and optimisers;
//! - [`init`]: Xavier/normal initialisers;
//! - [`parallel_map`]: fork/join over the shared persistent worker pool
//!   ([`umgad_rt::pool`]) for per-subgraph autoencoders; the dense and CSR
//!   product kernels dispatch through the same pool above
//!   [`matrix::PARALLEL_MIN_FLOPS`] multiply-adds, with results bitwise
//!   independent of thread count.
//!
//! ## Example
//!
//! ```
//! use umgad_tensor::{Adam, Matrix, Param, Tape};
//! use std::rc::Rc;
//!
//! // Fit y = x @ w to a target with Adam.
//! let x = Matrix::from_fn(8, 3, |i, j| (i * 3 + j) as f64 / 10.0);
//! let target = Rc::new(Matrix::from_fn(8, 2, |i, j| (i + j) as f64 / 5.0));
//! let mut w = Param::new(Matrix::zeros(3, 2));
//! let opt = Adam::with_lr(0.05);
//! let mut last = f64::INFINITY;
//! for _ in 0..100 {
//!     let mut tape = Tape::new();
//!     let xv = tape.constant(x.clone());
//!     let wv = tape.leaf(w.value.clone());
//!     let y = tape.matmul(xv, wv);
//!     let loss = tape.mse_loss(y, Rc::clone(&target));
//!     tape.backward(loss);
//!     opt.step(&mut w, tape.grad(wv).unwrap());
//!     last = tape.value(loss).get(0, 0);
//! }
//! assert!(last < 0.05);
//! ```

#![warn(missing_docs)]

pub mod init;
pub mod matrix;
pub mod optim;
pub mod parallel;
pub mod sparse;
pub mod tape;

pub use matrix::{cosine, dot, l1_distance, l2_distance, Matrix, PARALLEL_MIN_FLOPS};
pub use optim::{clip_grad_norm, Adam, LrSchedule, Param, ParamState, Sgd};
pub use parallel::{default_threads, parallel_map};
pub use sparse::{CsrMatrix, SpPair};
pub use tape::{sigmoid, Tape, Var};
