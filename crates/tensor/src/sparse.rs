//! Compressed sparse row (CSR) matrices.
//!
//! Graph adjacency (and its GCN-normalised variant) is stored as CSR and
//! multiplied against dense feature matrices with [`CsrMatrix::spmm`]. CSR
//! matrices are immutable once built; construction goes through COO triples.

use std::sync::Arc;

use crate::matrix::Matrix;

/// An immutable sparse matrix in CSR format.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Build from COO triples `(row, col, value)`.
    ///
    /// Triples may arrive in any order; duplicates are summed. Entries with
    /// value exactly `0.0` are kept out of the structure.
    pub fn from_coo(rows: usize, cols: usize, mut triples: Vec<(usize, usize, f64)>) -> Self {
        assert!(
            cols <= u32::MAX as usize,
            "CsrMatrix supports at most 2^32 columns"
        );
        triples.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Pass 1: merge duplicate (row, col) runs.
        let mut merged: Vec<(usize, u32, f64)> = Vec::with_capacity(triples.len());
        for (r, c, v) in triples {
            assert!(
                r < rows && c < cols,
                "coo entry ({r},{c}) out of bounds {rows}x{cols}"
            );
            match merged.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c as u32 => *lv += v,
                _ => merged.push((r, c as u32, v)),
            }
        }
        // Pass 2: build CSR arrays, skipping entries that merged to zero.
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(merged.len());
        let mut vals = Vec::with_capacity(merged.len());
        for (r, c, v) in merged {
            if v == 0.0 {
                continue;
            }
            col_idx.push(c);
            vals.push(v);
            row_ptr[r + 1] += 1;
        }
        for r in 1..=rows {
            row_ptr[r] += row_ptr[r - 1];
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Build an unweighted CSR (all values 1.0) from an edge list.
    pub fn from_edges(rows: usize, cols: usize, edges: &[(usize, usize)]) -> Self {
        Self::from_coo(
            rows,
            cols,
            edges.iter().map(|&(r, c)| (r, c, 1.0)).collect(),
        )
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Column indices of row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r`.
    #[inline]
    pub fn row_vals(&self, r: usize) -> &[f64] {
        &self.vals[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Out-degree (stored entries) of row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Iterate all `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            self.row_cols(r)
                .iter()
                .zip(self.row_vals(r))
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Value at `(r, c)` (binary search within the row), 0.0 when absent.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let cols = self.row_cols(r);
        match cols.binary_search(&(c as u32)) {
            Ok(k) => self.row_vals(r)[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse × dense product `self @ x`.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            x.rows(),
            "spmm: {}x{} @ {}x{}",
            self.rows,
            self.cols,
            x.rows(),
            x.cols()
        );
        let mut out = Matrix::zeros(self.rows, x.cols());
        for r in 0..self.rows {
            let orow = out.row_mut(r);
            for (&c, &v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
                let xrow = x.row(c as usize);
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Transposed copy (CSR of `self^T`).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=self.cols {
            counts[i] += counts[i - 1];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for (r, c, v) in self.iter() {
            let k = cursor[c];
            col_idx[k] = r as u32;
            vals[k] = v;
            cursor[c] += 1;
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// True when the matrix equals its transpose.
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        self.iter()
            .all(|(r, c, v)| (self.get(c, r) - v).abs() < 1e-12)
    }

    /// Densify — for tests and very small graphs only.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, out.get(r, c) + v);
        }
        out
    }
}

/// A forward/backward pair of sparse operands for autograd `spmm`.
///
/// The backward pass of `y = A @ x` needs `A^T @ grad_y`. Computing the
/// transpose on every op creation would be wasteful, so callers build the
/// pair once per adjacency matrix. GCN-normalised adjacency of an undirected
/// graph is symmetric, in which case both directions share one allocation.
#[derive(Clone, Debug)]
pub struct SpPair {
    /// Matrix used in the forward product.
    pub fwd: Arc<CsrMatrix>,
    /// Transpose used when back-propagating to the dense operand.
    pub bwd: Arc<CsrMatrix>,
}

impl SpPair {
    /// Pair for a symmetric matrix: forward and backward share storage.
    pub fn symmetric(m: Arc<CsrMatrix>) -> Self {
        debug_assert!(
            m.is_symmetric() || m.nnz() > 200_000,
            "SpPair::symmetric on asymmetric matrix"
        );
        Self {
            bwd: Arc::clone(&m),
            fwd: m,
        }
    }

    /// Pair for a general matrix; computes the transpose once.
    pub fn new(m: Arc<CsrMatrix>) -> Self {
        let t = Arc::new(m.transpose());
        Self { fwd: m, bwd: t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        CsrMatrix::from_coo(
            3,
            3,
            vec![(2, 1, 4.0), (0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0)],
        )
    }

    #[test]
    fn from_coo_sorts_and_indexes() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_coo(2, 2, vec![(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 3.5);
    }

    #[test]
    fn explicit_zeros_dropped() {
        let m = CsrMatrix::from_coo(2, 2, vec![(0, 0, 0.0), (1, 1, 2.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 1), 2.0);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = sample();
        let x = Matrix::from_fn(3, 2, |i, j| (i * 2 + j + 1) as f64);
        let sparse = m.spmm(&x);
        let dense = m.to_dense().matmul(&x);
        assert_eq!(sparse.data(), dense.data());
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        assert_eq!(
            m.transpose().to_dense().data(),
            m.to_dense().transpose().data()
        );
    }

    #[test]
    fn symmetric_detection() {
        let sym = CsrMatrix::from_coo(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(sym.is_symmetric());
        assert!(!sample().is_symmetric());
    }

    #[test]
    fn iter_covers_all_entries() {
        let m = sample();
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(
            triples,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }

    #[test]
    fn empty_rows_have_valid_ptrs() {
        let m = CsrMatrix::from_coo(4, 4, vec![(3, 3, 1.0)]);
        assert_eq!(m.row_nnz(0), 0);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_nnz(2), 0);
        assert_eq!(m.row_nnz(3), 1);
    }
}
