//! Compressed sparse row (CSR) matrices.
//!
//! Graph adjacency (and its GCN-normalised variant) is stored as CSR and
//! multiplied against dense feature matrices with [`CsrMatrix::spmm`]. CSR
//! matrices are immutable once built; construction goes through COO triples.

use std::sync::Arc;

use crate::matrix::{Matrix, PARALLEL_MIN_FLOPS};

/// An immutable sparse matrix in CSR format.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

/// Reusable CSR backing stores, reclaimed from a retired matrix via
/// [`CsrMatrix::reclaim_storage`] and handed back to
/// [`CsrMatrix::from_coo_reusing`]. The masked-view scratch in
/// `umgad-graph` cycles pruned adjacency matrices through this so
/// steady-state epochs rebuild CSR structures without touching the
/// allocator.
#[derive(Debug, Default)]
pub struct CsrStorage {
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrStorage {
    /// Decompose into the backing `(row_ptr, col_idx, vals)` vectors, for
    /// producers that fill CSR arrays directly and finish with
    /// [`CsrMatrix::from_sorted_parts`]. Capacities survive the round trip.
    pub fn into_parts(self) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
        (self.row_ptr, self.col_idx, self.vals)
    }
}

impl CsrMatrix {
    /// Widest dense operand (feature) row that [`Self::spmm_row_into`]
    /// stages in a stack accumulator. Covers every hidden size UMGAD uses
    /// (attr dims and hidden dims are ≤ 64 at all scales).
    const ACC_WIDTH: usize = 64;

    /// Build from COO triples `(row, col, value)`.
    ///
    /// Triples may arrive in any order; duplicates are summed. Entries with
    /// value exactly `0.0` are kept out of the structure.
    pub fn from_coo(rows: usize, cols: usize, mut triples: Vec<(usize, usize, f64)>) -> Self {
        Self::from_coo_reusing(rows, cols, &mut triples, CsrStorage::default())
    }

    /// Build directly from CSR arrays that are already in canonical form:
    /// `row_ptr` monotone with `row_ptr[0] == 0` and
    /// `row_ptr[rows] == col_idx.len()`, every row's columns strictly
    /// increasing and in bounds, and no stored zeros. This is the fast path
    /// for producers that emit entries row-major/column-sorted by
    /// construction (e.g. masked re-normalisation from a sorted template)
    /// — it skips `from_coo`'s sort and merge entirely. Invariants are
    /// checked in debug builds.
    pub fn from_sorted_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "from_sorted_parts: row_ptr length");
        assert_eq!(row_ptr[0], 0, "from_sorted_parts: row_ptr[0]");
        assert_eq!(
            *row_ptr.last().expect("non-empty row_ptr"),
            col_idx.len(),
            "from_sorted_parts: row_ptr[rows]"
        );
        assert_eq!(
            col_idx.len(),
            vals.len(),
            "from_sorted_parts: col/val length"
        );
        debug_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!((0..rows).all(|r| {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            row.windows(2).all(|w| w[0] < w[1]) && row.iter().all(|&c| (c as usize) < cols)
        }));
        debug_assert!(vals.iter().all(|&v| v != 0.0));
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// [`Self::from_coo`] drawing its backing stores from `storage` (grown
    /// only when capacity falls short). `triples` is sorted in place and
    /// left intact for the caller to clear and refill. Results are
    /// identical to `from_coo` for the same triples.
    pub fn from_coo_reusing(
        rows: usize,
        cols: usize,
        triples: &mut [(usize, usize, f64)],
        storage: CsrStorage,
    ) -> Self {
        assert!(
            cols <= u32::MAX as usize,
            "CsrMatrix supports at most 2^32 columns"
        );
        let CsrStorage {
            mut row_ptr,
            mut col_idx,
            mut vals,
        } = storage;
        triples.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Pass 1: merge duplicate (row, col) runs straight into the CSR
        // arrays; row_ptr[r + 1] counts row r's entries for now.
        row_ptr.clear();
        row_ptr.resize(rows + 1, 0);
        col_idx.clear();
        vals.clear();
        let mut last_row = usize::MAX;
        for &(r, c, v) in triples.iter() {
            assert!(
                r < rows && c < cols,
                "coo entry ({r},{c}) out of bounds {rows}x{cols}"
            );
            let c = c as u32;
            if last_row == r && col_idx.last() == Some(&c) {
                *vals.last_mut().expect("entry exists for last_row") += v;
            } else {
                col_idx.push(c);
                vals.push(v);
                row_ptr[r + 1] += 1;
                last_row = r;
            }
        }
        // Pass 2: compact away runs that merged to exactly zero, then turn
        // counts into offsets.
        let mut kept_total = 0;
        let mut idx = 0;
        for r in 0..rows {
            let count = row_ptr[r + 1];
            let mut kept = 0;
            for _ in 0..count {
                let v = vals[idx];
                if v != 0.0 {
                    col_idx[kept_total] = col_idx[idx];
                    vals[kept_total] = v;
                    kept_total += 1;
                    kept += 1;
                }
                idx += 1;
            }
            row_ptr[r + 1] = kept;
        }
        col_idx.truncate(kept_total);
        vals.truncate(kept_total);
        for r in 1..=rows {
            row_ptr[r] += row_ptr[r - 1];
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Tear down into reusable backing stores for
    /// [`Self::from_coo_reusing`].
    pub fn reclaim_storage(self) -> CsrStorage {
        CsrStorage {
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            vals: self.vals,
        }
    }

    /// Build an unweighted CSR (all values 1.0) from an edge list.
    pub fn from_edges(rows: usize, cols: usize, edges: &[(usize, usize)]) -> Self {
        Self::from_coo(
            rows,
            cols,
            edges.iter().map(|&(r, c)| (r, c, 1.0)).collect(),
        )
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Column indices of row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r`.
    #[inline]
    pub fn row_vals(&self, r: usize) -> &[f64] {
        &self.vals[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Out-degree (stored entries) of row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Cumulative row offsets (length `rows + 1`), for weight-balanced row
    /// partitioning in the fused kernels.
    #[inline]
    pub(crate) fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Iterate all `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            self.row_cols(r)
                .iter()
                .zip(self.row_vals(r))
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Value at `(r, c)` (binary search within the row), 0.0 when absent.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let cols = self.row_cols(r);
        match cols.binary_search(&(c as u32)) {
            Ok(k) => self.row_vals(r)[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse × dense product `self @ x`.
    ///
    /// Above [`crate::matrix::PARALLEL_MIN_FLOPS`] multiply-adds
    /// (`nnz × x.cols`) the product fans out over the shared worker pool
    /// with an nnz-balanced row partition; smaller products stay on the
    /// calling thread. Both paths accumulate each output row over that
    /// row's stored entries in CSR order, so results are bitwise identical
    /// regardless of path or thread count.
    pub fn spmm(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, x.cols());
        self.spmm_into(x, &mut out);
        out
    }

    /// `self @ x` written into caller-provided storage (fully overwritten;
    /// stale contents are fine). Same dispatch and bitwise contract as
    /// [`Self::spmm`]; lets the tape arena reuse output buffers across
    /// epochs.
    pub fn spmm_into(&self, x: &Matrix, out: &mut Matrix) {
        let _span = umgad_rt::telemetry::span("kernel.spmm");
        let threads = crate::parallel::default_threads();
        if threads <= 1 || crate::matrix::madds(self.nnz(), x.cols(), 1) < PARALLEL_MIN_FLOPS {
            self.spmm_serial_into(x, out);
        } else {
            self.spmm_parallel_into(x, out, threads);
        }
    }

    /// Serial sparse × dense product.
    pub fn spmm_serial(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, x.cols());
        self.spmm_serial_into(x, &mut out);
        out
    }

    fn spmm_serial_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            x.rows(),
            "spmm: {}x{} @ {}x{}",
            self.rows,
            self.cols,
            x.rows(),
            x.cols()
        );
        assert_eq!(out.shape(), (self.rows, x.cols()), "spmm: output shape");
        out.data_mut().fill(0.0);
        for r in 0..self.rows {
            let orow = out.row_mut(r);
            self.spmm_row_into(x, r, orow);
        }
    }

    /// Parallel sparse × dense product over `threads` nnz-balanced row
    /// partitions. Bitwise identical to [`Self::spmm_serial`].
    ///
    /// Partitions are cut by cumulative `row_ptr` weight, not row count:
    /// on degree-skewed graphs (YelpChi's similarity relations concentrate
    /// most edges in a few hub rows) an even row split would leave most
    /// workers idle while one grinds through the hubs.
    pub fn spmm_parallel(&self, x: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows, x.cols());
        self.spmm_parallel_into(x, &mut out, threads);
        out
    }

    fn spmm_parallel_into(&self, x: &Matrix, out: &mut Matrix, threads: usize) {
        assert_eq!(
            self.cols,
            x.rows(),
            "spmm: {}x{} @ {}x{}",
            self.rows,
            self.cols,
            x.rows(),
            x.cols()
        );
        assert_eq!(out.shape(), (self.rows, x.cols()), "spmm: output shape");
        out.data_mut().fill(0.0);
        let n = x.cols();
        let bounds = self.nnz_partitions(threads);
        let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(bounds.len() - 1);
        let mut rest: &mut [f64] = out.data_mut();
        for w in bounds.windows(2) {
            let (r0, r1) = (w[0], w[1]);
            let (block, tail) = rest.split_at_mut((r1 - r0) * n);
            rest = tail;
            jobs.push(Box::new(move || {
                if n == 0 {
                    return;
                }
                for (i, orow) in block.chunks_exact_mut(n).enumerate() {
                    self.spmm_row_into(x, r0 + i, orow);
                }
            }));
        }
        umgad_rt::pool::global().run(jobs);
    }

    /// Accumulate row `r` of `self @ x` into `orow` (entries in CSR order).
    ///
    /// For feature widths up to [`Self::ACC_WIDTH`] (every UMGAD hidden
    /// size) the output row is staged in a stack accumulator: the whole
    /// stored-entry loop runs against registers/L1 with a four-wide entry
    /// unroll (four independent `x`-row gathers in flight per pass), and
    /// `orow` is written exactly once at the end. Wider rows fall back to a
    /// paired in-place loop. Every output element still receives its
    /// contributions one `+=` at a time in CSR entry order, so both paths
    /// are bitwise identical to the straightforward one-entry-per-pass
    /// loop.
    #[inline]
    pub(crate) fn spmm_row_into(&self, x: &Matrix, r: usize, orow: &mut [f64]) {
        let cols = self.row_cols(r);
        let vals = self.row_vals(r);
        let n = orow.len();
        if n <= Self::ACC_WIDTH {
            let mut buf = [0.0f64; Self::ACC_WIDTH];
            let acc = &mut buf[..n];
            acc.copy_from_slice(orow);
            let quads = cols.len() & !3;
            let mut k = 0;
            while k < quads {
                let x0 = &x.row(cols[k] as usize)[..n];
                let x1 = &x.row(cols[k + 1] as usize)[..n];
                let x2 = &x.row(cols[k + 2] as usize)[..n];
                let x3 = &x.row(cols[k + 3] as usize)[..n];
                let (v0, v1, v2, v3) = (vals[k], vals[k + 1], vals[k + 2], vals[k + 3]);
                for j in 0..n {
                    let t = acc[j] + v0 * x0[j];
                    let t = t + v1 * x1[j];
                    let t = t + v2 * x2[j];
                    acc[j] = t + v3 * x3[j];
                }
                k += 4;
            }
            while k < cols.len() {
                let xrow = &x.row(cols[k] as usize)[..n];
                let v = vals[k];
                for j in 0..n {
                    acc[j] += v * xrow[j];
                }
                k += 1;
            }
            orow.copy_from_slice(acc);
            return;
        }
        let paired = cols.len() & !1;
        let mut k = 0;
        while k < paired {
            let x0 = x.row(cols[k] as usize);
            let x1 = x.row(cols[k + 1] as usize);
            let (v0, v1) = (vals[k], vals[k + 1]);
            for ((o, &a), &b) in orow.iter_mut().zip(x0).zip(x1) {
                let t = *o + v0 * a;
                *o = t + v1 * b;
            }
            k += 2;
        }
        if k < cols.len() {
            let xrow = x.row(cols[k] as usize);
            let v = vals[k];
            for (o, &xv) in orow.iter_mut().zip(xrow) {
                *o += v * xv;
            }
        }
    }

    /// Row boundaries (length `parts + 1`, from `0` to `rows`) cutting the
    /// matrix into `parts` spans of near-equal stored-entry count. Boundary
    /// `p` is the first row at which the cumulative nnz reaches
    /// `total · p / parts`; spans may be empty when hub rows dominate.
    pub fn nnz_partitions(&self, parts: usize) -> Vec<usize> {
        let parts = parts.max(1);
        let total = self.nnz();
        let mut bounds = Vec::with_capacity(parts + 1);
        bounds.push(0);
        for p in 1..parts {
            let target = total * p / parts;
            let cut = self
                .row_ptr
                .partition_point(|&cum| cum < target)
                .min(self.rows);
            bounds.push(cut.max(*bounds.last().unwrap()));
        }
        bounds.push(self.rows);
        bounds
    }

    /// Transposed copy (CSR of `self^T`).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=self.cols {
            counts[i] += counts[i - 1];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut vals = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for (r, c, v) in self.iter() {
            let k = cursor[c];
            col_idx[k] = r as u32;
            vals[k] = v;
            cursor[c] += 1;
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// True when the matrix equals its transpose.
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        self.iter()
            .all(|(r, c, v)| (self.get(c, r) - v).abs() < 1e-12)
    }

    /// Densify — for tests and very small graphs only.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, out.get(r, c) + v);
        }
        out
    }
}

/// A forward/backward pair of sparse operands for autograd `spmm`.
///
/// The backward pass of `y = A @ x` needs `A^T @ grad_y`. Computing the
/// transpose on every op creation would be wasteful, so callers build the
/// pair once per adjacency matrix. GCN-normalised adjacency of an undirected
/// graph is symmetric, in which case both directions share one allocation.
#[derive(Clone, Debug)]
pub struct SpPair {
    /// Matrix used in the forward product.
    pub fwd: Arc<CsrMatrix>,
    /// Transpose used when back-propagating to the dense operand.
    pub bwd: Arc<CsrMatrix>,
}

impl SpPair {
    /// Pair for a symmetric matrix: forward and backward share storage.
    pub fn symmetric(m: Arc<CsrMatrix>) -> Self {
        debug_assert!(
            m.is_symmetric() || m.nnz() > 200_000,
            "SpPair::symmetric on asymmetric matrix"
        );
        Self {
            bwd: Arc::clone(&m),
            fwd: m,
        }
    }

    /// Pair for a general matrix; computes the transpose once.
    pub fn new(m: Arc<CsrMatrix>) -> Self {
        let t = Arc::new(m.transpose());
        Self { fwd: m, bwd: t }
    }
}

/// `Arc`-identity-keyed cache of autograd [`SpPair`]s.
///
/// Builds each matrix's backward operand (the CSC view of `A`, i.e. `Aᵀ`
/// in CSR form) at most once per distinct `Arc` and hands out
/// storage-sharing clones afterwards. Symmetric matrices are detected on
/// the first miss and share forward/backward storage outright, so the
/// common GCN-normalised case costs no extra memory.
///
/// Lookup is by pointer identity, not value: a freshly normalised
/// adjacency (different allocation, even with equal entries) misses and
/// rebuilds. Holders that cache across graph swaps must [`clear`] or drop
/// the cache when the owning graph changes — `EpochScratch` in
/// `umgad-core` revalidates exactly this way.
///
/// [`clear`]: TransposeCache::clear
#[derive(Default)]
pub struct TransposeCache {
    entries: Vec<(Arc<CsrMatrix>, SpPair)>,
}

impl TransposeCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Autograd pair for `m`, building the transpose at most once per
    /// distinct `Arc`. Hits are a linear pointer scan — caches hold a
    /// handful of relations, so this stays cheaper than hashing.
    pub fn pair_for(&mut self, m: &Arc<CsrMatrix>) -> SpPair {
        if let Some((_, pair)) = self.entries.iter().find(|(key, _)| Arc::ptr_eq(key, m)) {
            return pair.clone();
        }
        let pair = if m.is_symmetric() {
            SpPair::symmetric(Arc::clone(m))
        } else {
            SpPair::new(Arc::clone(m))
        };
        self.entries.push((Arc::clone(m), pair.clone()));
        pair
    }

    /// Number of distinct matrices cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no pair has been built yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry (call on graph swap).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        CsrMatrix::from_coo(
            3,
            3,
            vec![(2, 1, 4.0), (0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0)],
        )
    }

    #[test]
    fn from_coo_sorts_and_indexes() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_coo(2, 2, vec![(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 3.5);
    }

    #[test]
    fn explicit_zeros_dropped() {
        let m = CsrMatrix::from_coo(2, 2, vec![(0, 0, 0.0), (1, 1, 2.0)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 1), 2.0);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = sample();
        let x = Matrix::from_fn(3, 2, |i, j| (i * 2 + j + 1) as f64);
        let sparse = m.spmm(&x);
        let dense = m.to_dense().matmul(&x);
        assert_eq!(sparse.data(), dense.data());
    }

    #[test]
    fn spmm_parallel_matches_serial_bitwise() {
        let m = sample();
        let x = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 / 3.0 - 1.5);
        let serial = m.spmm_serial(&x);
        for threads in [1, 2, 5, 8] {
            assert_eq!(m.spmm_parallel(&x, threads).data(), serial.data());
        }
    }

    #[test]
    fn nnz_partitions_balance_skewed_rows() {
        // One hub row with 90 entries, then 30 rows with 1 entry each: an
        // even row split would give the first part the whole hub plus its
        // share of the tail; nnz cuts isolate the hub instead.
        let mut triples = Vec::new();
        for c in 0..90 {
            triples.push((0, c, 1.0));
        }
        for r in 1..31 {
            triples.push((r, r, 1.0));
        }
        let m = CsrMatrix::from_coo(31, 90, triples);
        let bounds = m.nnz_partitions(4);
        assert_eq!(bounds.len(), 5);
        assert_eq!(*bounds.first().unwrap(), 0);
        assert_eq!(*bounds.last().unwrap(), 31);
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        // The hub row (90 of 120 nnz = 3 quarters) must own the first three
        // spans; the 30 single-entry rows all land in the last one.
        assert_eq!(bounds, vec![0, 1, 1, 1, 31]);

        // Partitioning stays sane on empty and dense-uniform matrices.
        let empty = CsrMatrix::from_coo(5, 5, vec![]);
        assert_eq!(empty.nnz_partitions(3), vec![0, 0, 0, 5]);
        let uniform = CsrMatrix::from_coo(8, 2, (0..8).map(|r| (r, 0, 1.0)).collect());
        assert_eq!(uniform.nnz_partitions(4), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        assert_eq!(
            m.transpose().to_dense().data(),
            m.to_dense().transpose().data()
        );
    }

    #[test]
    fn symmetric_detection() {
        let sym = CsrMatrix::from_coo(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(sym.is_symmetric());
        assert!(!sample().is_symmetric());
    }

    #[test]
    fn iter_covers_all_entries() {
        let m = sample();
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(
            triples,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }

    #[test]
    fn empty_rows_have_valid_ptrs() {
        let m = CsrMatrix::from_coo(4, 4, vec![(3, 3, 1.0)]);
        assert_eq!(m.row_nnz(0), 0);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_nnz(2), 0);
        assert_eq!(m.row_nnz(3), 1);
    }

    #[test]
    fn transpose_cache_hits_by_arc_identity() {
        let mut cache = TransposeCache::new();
        assert!(cache.is_empty());
        let m = Arc::new(sample());
        let p1 = cache.pair_for(&m);
        let p2 = cache.pair_for(&m);
        // Same Arc: the cached transpose is handed out, not rebuilt.
        assert!(Arc::ptr_eq(&p1.bwd, &p2.bwd));
        assert_eq!(cache.len(), 1);
        // Equal values, different allocation: identity lookup must miss
        // and build a fresh pair.
        let twin = Arc::new(sample());
        let p3 = cache.pair_for(&twin);
        assert!(!Arc::ptr_eq(&p1.bwd, &p3.bwd));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn transpose_cache_shares_storage_for_symmetric() {
        let sym = Arc::new(CsrMatrix::from_coo(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]));
        let pair = TransposeCache::new().pair_for(&sym);
        // Symmetric: forward and backward are the same allocation.
        assert!(Arc::ptr_eq(&pair.fwd, &pair.bwd));
        assert!(Arc::ptr_eq(&pair.fwd, &sym));
    }

    #[test]
    fn transpose_cache_builds_true_transpose_for_asymmetric() {
        let m = Arc::new(sample());
        let pair = TransposeCache::new().pair_for(&m);
        assert!(Arc::ptr_eq(&pair.fwd, &m));
        assert!(!Arc::ptr_eq(&pair.fwd, &pair.bwd));
        assert_eq!(pair.bwd.to_dense().data(), m.to_dense().transpose().data());
    }
}
