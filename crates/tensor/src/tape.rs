//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a dynamic computation graph over [`Matrix`] values.
//! Each operation appends a node holding its forward value; [`Tape::backward`]
//! walks the tape in reverse, accumulating gradients for every node reachable
//! from a differentiable leaf. The tape is rebuilt every training step (the
//! "define-by-run" style), which keeps masking/sampling-dependent graph
//! shapes — the heart of a graph-masked autoencoder — trivial to express.
//!
//! Besides primitive ops the tape offers *composite loss ops* used by the
//! paper: the scaled-cosine reconstruction error (Eq. 4/13/15), the
//! negative-sampled edge cross-entropy (Eq. 7/15), and the dual-view
//! InfoNCE contrast (Eq. 17). Composites compute their backward pass
//! analytically, which keeps both tape length and memory bounded.

use std::rc::Rc;

use umgad_rt::rand::Rng;

use crate::matrix::{dot, Matrix};
use crate::sparse::SpPair;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// Index of this node on its tape.
    #[inline]
    pub fn id(self) -> usize {
        self.0
    }
}

/// Recorded operation; parents are tape indices.
enum Op {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Hadamard(usize, usize),
    /// `x (N x C) + row (1 x C)` broadcast over rows.
    AddRow(usize, usize),
    Scale(usize, f64),
    /// `scalar (1x1) * x`, gradients to both.
    ScalarMul(usize, usize),
    MatMul(usize, usize),
    /// `a @ b^T`.
    MatMulTb(usize, usize),
    SpMm(SpPair, usize),
    Relu(usize),
    LeakyRelu(usize, f64),
    Elu(usize, f64),
    Sigmoid(usize),
    Tanh(usize),
    GatherRows(usize, Rc<Vec<usize>>),
    /// Rows in `idx` of `x` replaced by the (learnable) `token` row.
    ReplaceRows {
        x: usize,
        token: usize,
        idx: Rc<Vec<usize>>,
    },
    /// Pre-sampled inverted-dropout mask (entries are `0` or `1/(1-p)`).
    Dropout(usize, Rc<Vec<f64>>),
    Sum(usize),
    Mean(usize),
    SqSum(usize),
    /// L2-normalise each row.
    RowNormalize(usize),
    /// Softmax along each row.
    SoftmaxRow(usize),
    /// Extract entry `(i, j)` as a `1x1`.
    Entry(usize, usize, usize),
    /// Mean over `idx` of `(1 - cos(x_i, t_i))^eta` — GraphMAE-style loss.
    ScaledCosine {
        x: usize,
        target: Rc<Matrix>,
        idx: Rc<Vec<usize>>,
        eta: f64,
    },
    /// InfoNCE over masked edges with `q` sampled negatives per edge.
    EdgeNce {
        z: usize,
        pos: Rc<Vec<(usize, usize)>>,
        negs: Rc<Vec<usize>>,
        q: usize,
    },
    /// Dual-view InfoNCE (Eq. 17) with `q` sampled contrast nodes per anchor.
    InfoNce {
        a: usize,
        b: usize,
        negs: Rc<Vec<usize>>,
        q: usize,
        tau: f64,
    },
    /// Mean squared error against a constant target.
    FrobMse(usize, Rc<Matrix>),
    /// Element-wise binary cross entropy on logits vs constant 0/1 target,
    /// with a positive-class weight (DOMINANT-style structure decoder).
    BceLogits {
        x: usize,
        target: Rc<Matrix>,
        pos_weight: f64,
    },
}

/// A reverse-mode autodiff tape.
#[derive(Default)]
pub struct Tape {
    values: Vec<Matrix>,
    ops: Vec<Op>,
    requires: Vec<bool>,
    grads: Vec<Option<Matrix>>,
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op, requires: bool) -> Var {
        self.values.push(value);
        self.ops.push(op);
        self.requires.push(requires);
        self.grads.push(None);
        Var(self.values.len() - 1)
    }

    /// Record a non-differentiable input.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Record a differentiable leaf (a parameter).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Forward value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.values[v.0]
    }

    /// Gradient accumulated by [`Tape::backward`], if any.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.grads[v.0].as_ref()
    }

    /// Gradient, or a zero matrix of the node's shape when none flowed.
    pub fn grad_or_zero(&self, v: Var) -> Matrix {
        let (r, c) = self.values[v.0].shape();
        self.grads[v.0]
            .clone()
            .unwrap_or_else(|| Matrix::zeros(r, c))
    }

    fn req(&self, a: usize) -> bool {
        self.requires[a]
    }

    // ---- primitive ops -------------------------------------------------

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].add(&self.values[b.0]);
        let r = self.req(a.0) || self.req(b.0);
        self.push(v, Op::Add(a.0, b.0), r)
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].sub(&self.values[b.0]);
        let r = self.req(a.0) || self.req(b.0);
        self.push(v, Op::Sub(a.0, b.0), r)
    }

    /// Element-wise product.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].hadamard(&self.values[b.0]);
        let r = self.req(a.0) || self.req(b.0);
        self.push(v, Op::Hadamard(a.0, b.0), r)
    }

    /// Broadcast-add a `1 x C` row (bias) to every row of `x`.
    pub fn add_row(&mut self, x: Var, row: Var) -> Var {
        let xm = &self.values[x.0];
        let rm = &self.values[row.0];
        assert_eq!(rm.rows(), 1);
        assert_eq!(rm.cols(), xm.cols());
        let mut v = xm.clone();
        for i in 0..v.rows() {
            let dst = v.row_mut(i);
            for (d, &s) in dst.iter_mut().zip(rm.row(0)) {
                *d += s;
            }
        }
        let r = self.req(x.0) || self.req(row.0);
        self.push(v, Op::AddRow(x.0, row.0), r)
    }

    /// Multiply by a compile-time constant.
    pub fn scale(&mut self, x: Var, alpha: f64) -> Var {
        let v = self.values[x.0].scaled(alpha);
        let r = self.req(x.0);
        self.push(v, Op::Scale(x.0, alpha), r)
    }

    /// Multiply `x` by a learnable scalar (a `1x1` node).
    pub fn scalar_mul(&mut self, scalar: Var, x: Var) -> Var {
        let sm = &self.values[scalar.0];
        assert_eq!(sm.shape(), (1, 1), "scalar_mul expects a 1x1 scalar node");
        let s = sm.get(0, 0);
        let v = self.values[x.0].scaled(s);
        let r = self.req(scalar.0) || self.req(x.0);
        self.push(v, Op::ScalarMul(scalar.0, x.0), r)
    }

    /// Dense matrix product `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].matmul(&self.values[b.0]);
        let r = self.req(a.0) || self.req(b.0);
        self.push(v, Op::MatMul(a.0, b.0), r)
    }

    /// Dense product with transposed right operand `a @ b^T`.
    pub fn matmul_tb(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].matmul_tb(&self.values[b.0]);
        let r = self.req(a.0) || self.req(b.0);
        self.push(v, Op::MatMulTb(a.0, b.0), r)
    }

    /// Sparse × dense product `pair.fwd @ x`.
    pub fn spmm(&mut self, pair: &SpPair, x: Var) -> Var {
        let v = pair.fwd.spmm(&self.values[x.0]);
        let r = self.req(x.0);
        self.push(v, Op::SpMm(pair.clone(), x.0), r)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.values[x.0].map(|t| t.max(0.0));
        let r = self.req(x.0);
        self.push(v, Op::Relu(x.0), r)
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, x: Var, alpha: f64) -> Var {
        let v = self.values[x.0].map(|t| if t > 0.0 { t } else { alpha * t });
        let r = self.req(x.0);
        self.push(v, Op::LeakyRelu(x.0, alpha), r)
    }

    /// Exponential linear unit.
    pub fn elu(&mut self, x: Var, alpha: f64) -> Var {
        let v = self.values[x.0].map(|t| if t > 0.0 { t } else { alpha * (t.exp() - 1.0) });
        let r = self.req(x.0);
        self.push(v, Op::Elu(x.0, alpha), r)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let v = self.values[x.0].map(sigmoid);
        let r = self.req(x.0);
        self.push(v, Op::Sigmoid(x.0), r)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let v = self.values[x.0].map(f64::tanh);
        let r = self.req(x.0);
        self.push(v, Op::Tanh(x.0), r)
    }

    /// Gather rows of `x` by index (duplicates allowed).
    pub fn gather_rows(&mut self, x: Var, idx: Rc<Vec<usize>>) -> Var {
        let v = self.values[x.0].gather_rows(&idx);
        let r = self.req(x.0);
        self.push(v, Op::GatherRows(x.0, idx), r)
    }

    /// Replace rows `idx` of `x` with the learnable `token` (a `1 x C` node).
    ///
    /// This is the `[MASK]` token mechanism of Eq. 1: masked node attributes
    /// are substituted by a shared learnable vector.
    pub fn replace_rows(&mut self, x: Var, token: Var, idx: Rc<Vec<usize>>) -> Var {
        let tm = &self.values[token.0];
        assert_eq!(tm.rows(), 1);
        assert_eq!(tm.cols(), self.values[x.0].cols());
        let mut v = self.values[x.0].clone();
        let trow = tm.row(0).to_vec();
        for &i in idx.iter() {
            v.set_row(i, &trow);
        }
        let r = self.req(x.0) || self.req(token.0);
        self.push(
            v,
            Op::ReplaceRows {
                x: x.0,
                token: token.0,
                idx,
            },
            r,
        )
    }

    /// Inverted dropout with keep-probability `1 - p`; identity when `p == 0`.
    pub fn dropout(&mut self, x: Var, p: f64, rng: &mut impl Rng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        if p == 0.0 {
            return x;
        }
        let scale = 1.0 / (1.0 - p);
        let xm = &self.values[x.0];
        let mask: Vec<f64> = (0..xm.len())
            .map(|_| if rng.gen::<f64>() < p { 0.0 } else { scale })
            .collect();
        let mask = Rc::new(mask);
        let data = xm
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(&v, &m)| v * m)
            .collect();
        let v = Matrix::from_vec(xm.rows(), xm.cols(), data);
        let r = self.req(x.0);
        self.push(v, Op::Dropout(x.0, mask), r)
    }

    /// Sum of all entries, as a `1x1`.
    pub fn sum(&mut self, x: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.values[x.0].sum()]);
        let r = self.req(x.0);
        self.push(v, Op::Sum(x.0), r)
    }

    /// Mean of all entries, as a `1x1`.
    pub fn mean(&mut self, x: Var) -> Var {
        let m = &self.values[x.0];
        let v = Matrix::from_vec(1, 1, vec![m.sum() / m.len() as f64]);
        let r = self.req(x.0);
        self.push(v, Op::Mean(x.0), r)
    }

    /// Sum of squared entries, as a `1x1` (for L2 penalties).
    pub fn sq_sum(&mut self, x: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.values[x.0].sq_sum()]);
        let r = self.req(x.0);
        self.push(v, Op::SqSum(x.0), r)
    }

    /// L2-normalise every row (zero rows stay zero).
    pub fn row_normalize(&mut self, x: Var) -> Var {
        let xm = &self.values[x.0];
        let mut v = xm.clone();
        for i in 0..v.rows() {
            let n = v.row_norm(i);
            if n > 1e-12 {
                for t in v.row_mut(i) {
                    *t /= n;
                }
            }
        }
        let r = self.req(x.0);
        self.push(v, Op::RowNormalize(x.0), r)
    }

    /// Row-wise softmax (used on the `1 x R` relation-weight vectors).
    pub fn softmax_row(&mut self, x: Var) -> Var {
        let xm = &self.values[x.0];
        let mut v = xm.clone();
        for i in 0..v.rows() {
            let row = v.row_mut(i);
            let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            for t in row.iter_mut() {
                *t = (*t - mx).exp();
                z += *t;
            }
            for t in row.iter_mut() {
                *t /= z;
            }
        }
        let r = self.req(x.0);
        self.push(v, Op::SoftmaxRow(x.0), r)
    }

    /// Extract entry `(i, j)` as a `1x1` node.
    pub fn entry(&mut self, x: Var, i: usize, j: usize) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.values[x.0].get(i, j)]);
        let r = self.req(x.0);
        self.push(v, Op::Entry(x.0, i, j), r)
    }

    // ---- composite losses ----------------------------------------------

    /// Scaled-cosine reconstruction error (Eq. 4):
    /// `mean_{i in idx} (1 - cos(x_i, target_i))^eta`.
    ///
    /// Gradients flow to `x` only; `target` is the (constant) original
    /// attribute matrix.
    pub fn scaled_cosine_loss(
        &mut self,
        x: Var,
        target: Rc<Matrix>,
        idx: Rc<Vec<usize>>,
        eta: f64,
    ) -> Var {
        assert!(eta >= 1.0, "eta must be >= 1 (paper constraint)");
        assert!(!idx.is_empty(), "scaled_cosine_loss needs at least one row");
        let xm = &self.values[x.0];
        assert_eq!(xm.shape(), target.shape());
        let mut total = 0.0;
        for &i in idx.iter() {
            let c = crate::matrix::cosine(xm.row(i), target.row(i));
            total += (1.0 - c).max(0.0).powf(eta);
        }
        let v = Matrix::from_vec(1, 1, vec![total / idx.len() as f64]);
        let r = self.req(x.0);
        self.push(
            v,
            Op::ScaledCosine {
                x: x.0,
                target,
                idx,
                eta,
            },
            r,
        )
    }

    /// Negative-sampled edge cross-entropy (Eq. 7): for each masked edge
    /// `(u, v)` with negatives `v'_1..v'_q`, minimise
    /// `-log softmax(z_u . z_v over {z_u . z_v} ∪ {z_u . z_{v'}})`,
    /// averaged over edges. `negs` holds `q` node ids per positive edge,
    /// laid out contiguously.
    pub fn edge_nce_loss(
        &mut self,
        z: Var,
        pos: Rc<Vec<(usize, usize)>>,
        negs: Rc<Vec<usize>>,
        q: usize,
    ) -> Var {
        assert!(
            !pos.is_empty(),
            "edge_nce_loss needs at least one positive edge"
        );
        assert_eq!(
            negs.len(),
            pos.len() * q,
            "need q negatives per positive edge"
        );
        let zm = &self.values[z.0];
        let mut total = 0.0;
        for (e, &(u, v)) in pos.iter().enumerate() {
            let zu = zm.row(u);
            let s0 = dot(zu, zm.row(v));
            let mut lse_max = s0;
            let mut scores = Vec::with_capacity(q + 1);
            scores.push(s0);
            for &n in &negs[e * q..(e + 1) * q] {
                let s = dot(zu, zm.row(n));
                lse_max = lse_max.max(s);
                scores.push(s);
            }
            let lse = lse_max + scores.iter().map(|s| (s - lse_max).exp()).sum::<f64>().ln();
            total += lse - s0;
        }
        let v = Matrix::from_vec(1, 1, vec![total / pos.len() as f64]);
        let r = self.req(z.0);
        self.push(
            v,
            Op::EdgeNce {
                z: z.0,
                pos,
                negs,
                q,
            },
            r,
        )
    }

    /// Dual-view InfoNCE (Eq. 17): anchor `a_i` attracts `b_i` and repels
    /// `a_j`/`b_j` for `q` sampled `j` per anchor (`negs` is `N*q` ids).
    /// The positive term is included in the denominator for stability
    /// (standard InfoNCE; the paper's Eq. 17 omits it).
    pub fn info_nce_loss(
        &mut self,
        a: Var,
        b: Var,
        negs: Rc<Vec<usize>>,
        q: usize,
        tau: f64,
    ) -> Var {
        let am = &self.values[a.0];
        let bm = &self.values[b.0];
        assert_eq!(am.shape(), bm.shape());
        assert!(tau > 0.0);
        let n = am.rows();
        assert_eq!(negs.len(), n * q, "need q contrast nodes per anchor");
        let mut total = 0.0;
        for i in 0..n {
            let ai = am.row(i);
            let pos = dot(ai, bm.row(i)) / tau;
            let mut mx = pos;
            let mut scores = Vec::with_capacity(1 + 2 * q);
            scores.push(pos);
            for &j in &negs[i * q..(i + 1) * q] {
                let s1 = dot(ai, am.row(j)) / tau;
                let s2 = dot(ai, bm.row(j)) / tau;
                mx = mx.max(s1).max(s2);
                scores.push(s1);
                scores.push(s2);
            }
            let lse = mx + scores.iter().map(|s| (s - mx).exp()).sum::<f64>().ln();
            total += lse - pos;
        }
        let v = Matrix::from_vec(1, 1, vec![total / n as f64]);
        let r = self.req(a.0) || self.req(b.0);
        self.push(
            v,
            Op::InfoNce {
                a: a.0,
                b: b.0,
                negs,
                q,
                tau,
            },
            r,
        )
    }

    /// Mean squared error against a constant target.
    pub fn mse_loss(&mut self, x: Var, target: Rc<Matrix>) -> Var {
        let xm = &self.values[x.0];
        assert_eq!(xm.shape(), target.shape());
        let mut total = 0.0;
        for (a, b) in xm.data().iter().zip(target.data()) {
            let d = a - b;
            total += d * d;
        }
        let v = Matrix::from_vec(1, 1, vec![total / xm.len() as f64]);
        let r = self.req(x.0);
        self.push(v, Op::FrobMse(x.0, target), r)
    }

    /// Element-wise binary cross-entropy on logits against a constant 0/1
    /// target, with positive entries weighted by `pos_weight`.
    pub fn bce_logits_loss(&mut self, x: Var, target: Rc<Matrix>, pos_weight: f64) -> Var {
        let xm = &self.values[x.0];
        assert_eq!(xm.shape(), target.shape());
        let mut total = 0.0;
        for (&l, &t) in xm.data().iter().zip(target.data()) {
            // Numerically stable: max(l,0) - l*t + ln(1+e^{-|l|}), weighted.
            let w = if t > 0.5 { pos_weight } else { 1.0 };
            total += w * (l.max(0.0) - l * t + (-l.abs()).exp().ln_1p());
        }
        let v = Matrix::from_vec(1, 1, vec![total / xm.len() as f64]);
        let r = self.req(x.0);
        self.push(
            v,
            Op::BceLogits {
                x: x.0,
                target,
                pos_weight,
            },
            r,
        )
    }

    // ---- backward -------------------------------------------------------

    /// Back-propagate from a scalar (`1x1`) loss node, filling gradients for
    /// every differentiable ancestor.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.values[loss.0].shape(),
            (1, 1),
            "backward expects a scalar loss"
        );
        for g in &mut self.grads {
            *g = None;
        }
        self.grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));
        for id in (0..=loss.0).rev() {
            if !self.requires[id] {
                continue;
            }
            let Some(g) = self.grads[id].take() else {
                continue;
            };
            self.dispatch_backward(id, &g);
            self.grads[id] = Some(g);
        }
    }

    fn acc(&mut self, id: usize, delta: Matrix) {
        if !self.requires[id] {
            return;
        }
        match &mut self.grads[id] {
            Some(g) => g.add_scaled(&delta, 1.0),
            slot @ None => *slot = Some(delta),
        }
    }

    fn acc_entry(&mut self, id: usize, i: usize, j: usize, delta: f64) {
        if !self.requires[id] {
            return;
        }
        let (r, c) = self.values[id].shape();
        let g = self.grads[id].get_or_insert_with(|| Matrix::zeros(r, c));
        g.set(i, j, g.get(i, j) + delta);
    }

    #[allow(clippy::too_many_lines)]
    fn dispatch_backward(&mut self, id: usize, g: &Matrix) {
        // `ops[id]` is moved out temporarily to appease the borrow checker;
        // ops are cheap to move (indices + Rc's).
        let op = std::mem::replace(&mut self.ops[id], Op::Leaf);
        match &op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.acc(*a, g.clone());
                self.acc(*b, g.clone());
            }
            Op::Sub(a, b) => {
                self.acc(*a, g.clone());
                self.acc(*b, g.scaled(-1.0));
            }
            Op::Hadamard(a, b) => {
                let ga = g.hadamard(&self.values[*b]);
                let gb = g.hadamard(&self.values[*a]);
                self.acc(*a, ga);
                self.acc(*b, gb);
            }
            Op::AddRow(x, row) => {
                self.acc(*x, g.clone());
                if self.requires[*row] {
                    let mut gr = Matrix::zeros(1, g.cols());
                    for i in 0..g.rows() {
                        let src = g.row(i);
                        for (d, &s) in gr.row_mut(0).iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    self.acc(*row, gr);
                }
            }
            Op::Scale(x, alpha) => self.acc(*x, g.scaled(*alpha)),
            Op::ScalarMul(s, x) => {
                let sv = self.values[*s].get(0, 0);
                self.acc(*x, g.scaled(sv));
                if self.requires[*s] {
                    let gs = g
                        .data()
                        .iter()
                        .zip(self.values[*x].data())
                        .map(|(&gg, &xx)| gg * xx)
                        .sum();
                    self.acc(*s, Matrix::from_vec(1, 1, vec![gs]));
                }
            }
            Op::MatMul(a, b) => {
                if self.requires[*a] {
                    let ga = g.matmul_tb(&self.values[*b]);
                    self.acc(*a, ga);
                }
                if self.requires[*b] {
                    let gb = self.values[*a].matmul_ta(g);
                    self.acc(*b, gb);
                }
            }
            Op::MatMulTb(a, b) => {
                if self.requires[*a] {
                    let ga = g.matmul(&self.values[*b]);
                    self.acc(*a, ga);
                }
                if self.requires[*b] {
                    let gb = g.matmul_ta(&self.values[*a]);
                    self.acc(*b, gb);
                }
            }
            Op::SpMm(pair, x) => {
                if self.requires[*x] {
                    let gx = pair.bwd.spmm(g);
                    self.acc(*x, gx);
                }
            }
            Op::Relu(x) => {
                let mask = &self.values[*x];
                let data = g
                    .data()
                    .iter()
                    .zip(mask.data())
                    .map(|(&gg, &xx)| if xx > 0.0 { gg } else { 0.0 })
                    .collect();
                self.acc(*x, Matrix::from_vec(g.rows(), g.cols(), data));
            }
            Op::LeakyRelu(x, alpha) => {
                let mask = &self.values[*x];
                let data = g
                    .data()
                    .iter()
                    .zip(mask.data())
                    .map(|(&gg, &xx)| if xx > 0.0 { gg } else { alpha * gg })
                    .collect();
                self.acc(*x, Matrix::from_vec(g.rows(), g.cols(), data));
            }
            Op::Elu(x, alpha) => {
                let xin = &self.values[*x];
                let data = g
                    .data()
                    .iter()
                    .zip(xin.data())
                    .map(|(&gg, &xx)| if xx > 0.0 { gg } else { gg * alpha * xx.exp() })
                    .collect();
                self.acc(*x, Matrix::from_vec(g.rows(), g.cols(), data));
            }
            Op::Sigmoid(x) => {
                let y = &self.values[id];
                let data = g
                    .data()
                    .iter()
                    .zip(y.data())
                    .map(|(&gg, &yy)| gg * yy * (1.0 - yy))
                    .collect();
                self.acc(*x, Matrix::from_vec(g.rows(), g.cols(), data));
            }
            Op::Tanh(x) => {
                let y = &self.values[id];
                let data = g
                    .data()
                    .iter()
                    .zip(y.data())
                    .map(|(&gg, &yy)| gg * (1.0 - yy * yy))
                    .collect();
                self.acc(*x, Matrix::from_vec(g.rows(), g.cols(), data));
            }
            Op::GatherRows(x, idx) => {
                if self.requires[*x] {
                    let (r, c) = self.values[*x].shape();
                    let mut gx = Matrix::zeros(r, c);
                    for (o, &i) in idx.iter().enumerate() {
                        let src = g.row(o);
                        let dst = gx.row_mut(i);
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    self.acc(*x, gx);
                }
            }
            Op::ReplaceRows { x, token, idx } => {
                if self.requires[*x] {
                    let mut gx = g.clone();
                    for &i in idx.iter() {
                        for t in gx.row_mut(i) {
                            *t = 0.0;
                        }
                    }
                    self.acc(*x, gx);
                }
                if self.requires[*token] {
                    let mut gt = Matrix::zeros(1, g.cols());
                    for &i in idx.iter() {
                        let src = g.row(i);
                        for (d, &s) in gt.row_mut(0).iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    self.acc(*token, gt);
                }
            }
            Op::Dropout(x, mask) => {
                let data = g
                    .data()
                    .iter()
                    .zip(mask.iter())
                    .map(|(&gg, &m)| gg * m)
                    .collect();
                self.acc(*x, Matrix::from_vec(g.rows(), g.cols(), data));
            }
            Op::Sum(x) => {
                let s = g.get(0, 0);
                let (r, c) = self.values[*x].shape();
                self.acc(*x, Matrix::full(r, c, s));
            }
            Op::Mean(x) => {
                let (r, c) = self.values[*x].shape();
                let s = g.get(0, 0) / (r * c) as f64;
                self.acc(*x, Matrix::full(r, c, s));
            }
            Op::SqSum(x) => {
                let s = g.get(0, 0);
                self.acc(*x, self.values[*x].scaled(2.0 * s));
            }
            Op::RowNormalize(x) => {
                if self.requires[*x] {
                    let xin = &self.values[*x];
                    let y = &self.values[id];
                    let mut gx = Matrix::zeros(xin.rows(), xin.cols());
                    for i in 0..xin.rows() {
                        let n = xin.row_norm(i);
                        if n <= 1e-12 {
                            continue;
                        }
                        let yi = y.row(i);
                        let gi = g.row(i);
                        let gy = dot(gi, yi);
                        let dst = gx.row_mut(i);
                        for ((d, &gg), &yy) in dst.iter_mut().zip(gi).zip(yi) {
                            *d = (gg - gy * yy) / n;
                        }
                    }
                    self.acc(*x, gx);
                }
            }
            Op::SoftmaxRow(x) => {
                if self.requires[*x] {
                    let y = &self.values[id];
                    let mut gx = Matrix::zeros(y.rows(), y.cols());
                    for i in 0..y.rows() {
                        let yi = y.row(i);
                        let gi = g.row(i);
                        let gy = dot(gi, yi);
                        let dst = gx.row_mut(i);
                        for ((d, &gg), &yy) in dst.iter_mut().zip(gi).zip(yi) {
                            *d = yy * (gg - gy);
                        }
                    }
                    self.acc(*x, gx);
                }
            }
            Op::Entry(x, i, j) => {
                self.acc_entry(*x, *i, *j, g.get(0, 0));
            }
            Op::ScaledCosine {
                x,
                target,
                idx,
                eta,
            } => {
                if self.requires[*x] {
                    let scale = g.get(0, 0) / idx.len() as f64;
                    let xm = &self.values[*x];
                    let mut gx = Matrix::zeros(xm.rows(), xm.cols());
                    for &i in idx.iter() {
                        let a = xm.row(i);
                        let b = target.row(i);
                        let na = dot(a, a).sqrt();
                        let nb = dot(b, b).sqrt();
                        if na < 1e-12 || nb < 1e-12 {
                            continue;
                        }
                        let c = dot(a, b) / (na * nb);
                        // d/da (1-c)^eta = -eta (1-c)^{eta-1} * dc/da
                        // dc/da = b/(na*nb) - c*a/na^2
                        let coef = -eta * (1.0 - c).max(0.0).powf(eta - 1.0) * scale;
                        let dst = gx.row_mut(i);
                        for ((d, &av), &bv) in dst.iter_mut().zip(a).zip(b) {
                            *d += coef * (bv / (na * nb) - c * av / (na * na));
                        }
                    }
                    self.acc(*x, gx);
                }
            }
            Op::EdgeNce { z, pos, negs, q } => {
                if self.requires[*z] {
                    let zm = &self.values[*z];
                    let scale = g.get(0, 0) / pos.len() as f64;
                    let mut gz = Matrix::zeros(zm.rows(), zm.cols());
                    for (e, &(u, v)) in pos.iter().enumerate() {
                        let zu = zm.row(u).to_vec();
                        let mut cands = Vec::with_capacity(q + 1);
                        cands.push(v);
                        cands.extend_from_slice(&negs[e * q..(e + 1) * q]);
                        let scores: Vec<f64> = cands.iter().map(|&c| dot(&zu, zm.row(c))).collect();
                        let mx = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        let exps: Vec<f64> = scores.iter().map(|s| (s - mx).exp()).collect();
                        let zsum: f64 = exps.iter().sum();
                        for (k, &c) in cands.iter().enumerate() {
                            // dL/ds_k = p_k - [k == 0]
                            let p = exps[k] / zsum - if k == 0 { 1.0 } else { 0.0 };
                            let coef = p * scale;
                            // s_k = z_u . z_c  => grads to both rows.
                            let zc = zm.row(c).to_vec();
                            for (d, &t) in gz.row_mut(u).iter_mut().zip(&zc) {
                                *d += coef * t;
                            }
                            for (d, &t) in gz.row_mut(c).iter_mut().zip(&zu) {
                                *d += coef * t;
                            }
                        }
                    }
                    self.acc(*z, gz);
                }
            }
            Op::InfoNce { a, b, negs, q, tau } => {
                let need_a = self.requires[*a];
                let need_b = self.requires[*b];
                if need_a || need_b {
                    let am = &self.values[*a];
                    let bm = &self.values[*b];
                    let n = am.rows();
                    let scale = g.get(0, 0) / n as f64;
                    let mut ga = Matrix::zeros(am.rows(), am.cols());
                    let mut gb = Matrix::zeros(bm.rows(), bm.cols());
                    for i in 0..n {
                        let ai = am.row(i).to_vec();
                        // candidates: (row-source, index, weight sign)
                        // k = 0: positive (b, i); then per j: (a, j), (b, j)
                        let js = &negs[i * q..(i + 1) * q];
                        let mut scores = Vec::with_capacity(1 + 2 * q);
                        scores.push(dot(&ai, bm.row(i)) / tau);
                        for &j in js {
                            scores.push(dot(&ai, am.row(j)) / tau);
                            scores.push(dot(&ai, bm.row(j)) / tau);
                        }
                        let mx = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        let exps: Vec<f64> = scores.iter().map(|s| (s - mx).exp()).collect();
                        let zsum: f64 = exps.iter().sum();
                        let apply = |from_a: bool,
                                     row: usize,
                                     k: usize,
                                     ga: &mut Matrix,
                                     gb: &mut Matrix| {
                            let p = exps[k] / zsum - if k == 0 { 1.0 } else { 0.0 };
                            let coef = p * scale / tau;
                            let other = if from_a {
                                am.row(row).to_vec()
                            } else {
                                bm.row(row).to_vec()
                            };
                            for (d, &t) in ga.row_mut(i).iter_mut().zip(&other) {
                                *d += coef * t;
                            }
                            let dst = if from_a {
                                ga.row_mut(row)
                            } else {
                                gb.row_mut(row)
                            };
                            for (d, &t) in dst.iter_mut().zip(&ai) {
                                *d += coef * t;
                            }
                        };
                        apply(false, i, 0, &mut ga, &mut gb);
                        for (jj, &j) in js.iter().enumerate() {
                            apply(true, j, 1 + 2 * jj, &mut ga, &mut gb);
                            apply(false, j, 2 + 2 * jj, &mut ga, &mut gb);
                        }
                    }
                    if need_a {
                        self.acc(*a, ga);
                    }
                    if need_b {
                        self.acc(*b, gb);
                    }
                }
            }
            Op::FrobMse(x, target) => {
                if self.requires[*x] {
                    let xm = &self.values[*x];
                    let s = 2.0 * g.get(0, 0) / xm.len() as f64;
                    let data = xm
                        .data()
                        .iter()
                        .zip(target.data())
                        .map(|(&a, &b)| s * (a - b))
                        .collect();
                    self.acc(*x, Matrix::from_vec(xm.rows(), xm.cols(), data));
                }
            }
            Op::BceLogits {
                x,
                target,
                pos_weight,
            } => {
                if self.requires[*x] {
                    let xm = &self.values[*x];
                    let s = g.get(0, 0) / xm.len() as f64;
                    let data = xm
                        .data()
                        .iter()
                        .zip(target.data())
                        .map(|(&l, &t)| {
                            let w = if t > 0.5 { *pos_weight } else { 1.0 };
                            s * w * (sigmoid(l) - t)
                        })
                        .collect();
                    self.acc(*x, Matrix::from_vec(xm.rows(), xm.cols(), data));
                }
            }
        }
        self.ops[id] = op;
    }
}

/// Numerically benign logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umgad_rt::rand::rngs::SmallRng;
    use umgad_rt::rand::SeedableRng;

    #[test]
    fn add_backward_distributes() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = t.leaf(Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let c = t.add(a, b);
        let l = t.sum(c);
        t.backward(l);
        assert_eq!(t.grad(a).unwrap().data(), &[1.0, 1.0]);
        assert_eq!(t.grad(b).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn matmul_backward_shapes() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_fn(3, 4, |i, j| (i + j) as f64));
        let b = t.leaf(Matrix::from_fn(4, 2, |i, j| (i * j) as f64 + 1.0));
        let c = t.matmul(a, b);
        let l = t.sum(c);
        t.backward(l);
        assert_eq!(t.grad(a).unwrap().shape(), (3, 4));
        assert_eq!(t.grad(b).unwrap().shape(), (4, 2));
    }

    #[test]
    fn constant_gets_no_grad() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::full(2, 2, 1.0));
        let b = t.leaf(Matrix::full(2, 2, 2.0));
        let c = t.hadamard(a, b);
        let l = t.sum(c);
        t.backward(l);
        assert!(t.grad(a).is_none());
        assert_eq!(t.grad(b).unwrap().data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_masks_gradient() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]));
        let r = t.relu(a);
        let l = t.sum(r);
        t.backward(l);
        assert_eq!(t.grad(a).unwrap().data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn replace_rows_routes_grads() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_fn(3, 2, |i, _| i as f64 + 1.0));
        let tok = t.leaf(Matrix::from_vec(1, 2, vec![9.0, 9.0]));
        let idx = Rc::new(vec![1usize]);
        let y = t.replace_rows(x, tok, idx);
        assert_eq!(t.value(y).row(1), &[9.0, 9.0]);
        let l = t.sum(y);
        t.backward(l);
        // Masked row contributes no grad to x; token collects it instead.
        assert_eq!(t.grad(x).unwrap().data(), &[1.0, 1.0, 0.0, 0.0, 1.0, 1.0]);
        assert_eq!(t.grad(tok).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let mut t = Tape::new();
        let mut rng = SmallRng::seed_from_u64(7);
        let x = t.leaf(Matrix::full(2, 2, 3.0));
        let y = t.dropout(x, 0.0, &mut rng);
        assert_eq!(x, y);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let s = t.softmax_row(x);
        for i in 0..2 {
            let sum: f64 = t.value(s).row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scaled_cosine_zero_for_perfect_reconstruction() {
        let mut t = Tape::new();
        let target = Rc::new(Matrix::from_fn(4, 3, |i, j| (i + j) as f64 + 1.0));
        let x = t.leaf((*target).clone());
        let idx = Rc::new(vec![0usize, 2]);
        let l = t.scaled_cosine_loss(x, target, idx, 2.0);
        assert!(t.value(l).get(0, 0).abs() < 1e-12);
    }

    #[test]
    fn bce_logits_matches_manual() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let target = Rc::new(Matrix::from_vec(1, 2, vec![1.0, 0.0]));
        let l = t.bce_logits_loss(x, target, 1.0);
        // BCE at logit 0 is ln 2 for both classes.
        assert!((t.value(l).get(0, 0) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn backward_twice_resets_grads() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::full(1, 1, 2.0));
        let b = t.hadamard(a, a);
        let l = t.sum(b);
        t.backward(l);
        let g1 = t.grad(a).unwrap().get(0, 0);
        t.backward(l);
        let g2 = t.grad(a).unwrap().get(0, 0);
        assert_eq!(g1, g2);
        assert_eq!(g1, 4.0);
    }
}
