//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a dynamic computation graph over [`Matrix`] values.
//! Each operation appends a node holding its forward value; [`Tape::backward`]
//! walks the tape in reverse, accumulating gradients for every node reachable
//! from a differentiable leaf. The tape is rebuilt every training step (the
//! "define-by-run" style), which keeps masking/sampling-dependent graph
//! shapes — the heart of a graph-masked autoencoder — trivial to express.
//!
//! Besides primitive ops the tape offers *composite loss ops* used by the
//! paper: the scaled-cosine reconstruction error (Eq. 4/13/15), the
//! negative-sampled edge cross-entropy (Eq. 7/15), and the dual-view
//! InfoNCE contrast (Eq. 17). Composites compute their backward pass
//! analytically, which keeps both tape length and memory bounded.
//!
//! ## Zero-churn epochs
//!
//! Every matrix a tape produces — forward values *and* gradients — is drawn
//! from a [`BufferArena`] owned by the tape. [`Tape::recycle`] drains a
//! finished step's buffers back into the arena while clearing the node
//! lists; because training builds the same graph shape every epoch, the
//! next step's requests all hit the free-list and the steady state performs
//! no matrix allocations at all. Arena reuse is bitwise inert: every arena
//! constructor fully overwrites the buffer it hands out, so a recycled tape
//! computes exactly the same numbers as a fresh one.

use std::sync::Arc;

use umgad_rt::rand::Rng;

use crate::arena::{ArenaStats, BufferArena};
use crate::fused::{self, FusedAct};
use crate::matrix::{dot, Matrix};
use crate::sparse::SpPair;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

impl Var {
    /// Index of this node on its tape.
    #[inline]
    pub fn id(self) -> usize {
        self.0
    }
}

/// Recorded operation; parents are tape indices.
enum Op {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Hadamard(usize, usize),
    /// `x (N x C) + row (1 x C)` broadcast over rows.
    AddRow(usize, usize),
    Scale(usize, f64),
    /// `scalar (1x1) * x`, gradients to both.
    ScalarMul(usize, usize),
    MatMul(usize, usize),
    /// `a @ b^T`.
    MatMulTb(usize, usize),
    SpMm(SpPair, usize),
    /// Fused `act((adj @ x) @ w + bias)`; stores the propagated features
    /// `h = adj @ x` (for `dW = h^T @ dz`) and, when the activation needs
    /// it, the pre-activation `z`.
    SpmmBiasAct {
        adj: Option<SpPair>,
        x: usize,
        w: usize,
        bias: usize,
        act: FusedAct,
        h: Option<Matrix>,
        z: Option<Matrix>,
    },
    Relu(usize),
    LeakyRelu(usize, f64),
    Elu(usize, f64),
    Sigmoid(usize),
    Tanh(usize),
    GatherRows(usize, Arc<Vec<usize>>),
    /// Rows in `idx` of `x` replaced by the (learnable) `token` row.
    ReplaceRows {
        x: usize,
        token: usize,
        idx: Arc<Vec<usize>>,
    },
    /// Pre-sampled inverted-dropout mask (entries are `0` or `1/(1-p)`).
    Dropout(usize, Arc<Vec<f64>>),
    Sum(usize),
    Mean(usize),
    SqSum(usize),
    /// L2-normalise each row.
    RowNormalize(usize),
    /// Softmax along each row.
    SoftmaxRow(usize),
    /// Extract entry `(i, j)` as a `1x1`.
    Entry(usize, usize, usize),
    /// Mean over `idx` of `(1 - cos(x_i, t_i))^eta` — GraphMAE-style loss.
    ScaledCosine {
        x: usize,
        target: Arc<Matrix>,
        idx: Arc<Vec<usize>>,
        eta: f64,
    },
    /// InfoNCE over masked edges with `q` sampled negatives per edge.
    EdgeNce {
        z: usize,
        pos: Arc<Vec<(usize, usize)>>,
        negs: Arc<Vec<usize>>,
        q: usize,
    },
    /// Dual-view InfoNCE (Eq. 17) with `q` sampled contrast nodes per anchor.
    InfoNce {
        a: usize,
        b: usize,
        negs: Arc<Vec<usize>>,
        q: usize,
        tau: f64,
    },
    /// Mean squared error against a constant target.
    FrobMse(usize, Arc<Matrix>),
    /// Element-wise binary cross entropy on logits vs constant 0/1 target,
    /// with a positive-class weight (DOMINANT-style structure decoder).
    BceLogits {
        x: usize,
        target: Arc<Matrix>,
        pos_weight: f64,
    },
}

/// A reverse-mode autodiff tape.
#[derive(Default)]
pub struct Tape {
    values: Vec<Matrix>,
    ops: Vec<Op>,
    requires: Vec<bool>,
    grads: Vec<Option<Matrix>>,
    arena: BufferArena,
}

impl Tape {
    /// Empty tape with an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty tape reusing a previously warmed arena.
    pub fn with_arena(arena: BufferArena) -> Self {
        Self {
            arena,
            ..Self::default()
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Drop every recorded node, returning all value/gradient/op-stored
    /// matrix buffers to the arena for reuse by the next step. Node list
    /// capacities are preserved, so a recycled tape re-records without
    /// reallocating its spines either.
    pub fn recycle(&mut self) {
        let arena = &mut self.arena;
        for m in self.values.drain(..) {
            arena.put(m);
        }
        for m in self.grads.drain(..).flatten() {
            arena.put(m);
        }
        for op in self.ops.drain(..) {
            match op {
                Op::SpmmBiasAct { h, z, .. } => {
                    if let Some(m) = h {
                        arena.put(m);
                    }
                    if let Some(m) = z {
                        arena.put(m);
                    }
                }
                Op::Dropout(_, mask) => {
                    if let Ok(buf) = Arc::try_unwrap(mask) {
                        arena.put_buf(buf);
                    }
                }
                Op::ScaledCosine { target, .. }
                | Op::FrobMse(_, target)
                | Op::BceLogits { target, .. } => {
                    // Only reclaimed when the tape held the last reference
                    // (epoch-built targets); shared model state is untouched.
                    if let Ok(m) = Arc::try_unwrap(target) {
                        arena.put(m);
                    }
                }
                _ => {}
            }
        }
        self.requires.clear();
    }

    /// Arena hit/miss counters (see [`BufferArena::stats`]).
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Zero the arena hit/miss counters.
    pub fn reset_arena_stats(&mut self) {
        self.arena.reset_stats();
    }

    /// Direct access to the tape's arena, for callers that build auxiliary
    /// matrices (augmented attributes, scratch copies) they want pooled with
    /// the tape's own buffers.
    pub fn arena_mut(&mut self) -> &mut BufferArena {
        &mut self.arena
    }

    fn push(&mut self, value: Matrix, op: Op, requires: bool) -> Var {
        self.values.push(value);
        self.ops.push(op);
        self.requires.push(requires);
        self.grads.push(None);
        Var(self.values.len() - 1)
    }

    /// Record a non-differentiable input.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// Record a non-differentiable input copied into an arena buffer.
    pub fn constant_from(&mut self, value: &Matrix) -> Var {
        let v = self.arena.copy_of(value);
        self.push(v, Op::Leaf, false)
    }

    /// Record a differentiable leaf (a parameter).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Record a differentiable leaf copied into an arena buffer — the
    /// allocation-free way to bind a parameter each step.
    pub fn leaf_from(&mut self, value: &Matrix) -> Var {
        let v = self.arena.copy_of(value);
        self.push(v, Op::Leaf, true)
    }

    /// Forward value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.values[v.0]
    }

    /// Gradient accumulated by [`Tape::backward`], if any.
    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.grads[v.0].as_ref()
    }

    /// Gradient, or a zero matrix of the node's shape when none flowed.
    pub fn grad_or_zero(&self, v: Var) -> Matrix {
        let (r, c) = self.values[v.0].shape();
        self.grads[v.0]
            .clone()
            .unwrap_or_else(|| Matrix::zeros(r, c))
    }

    fn req(&self, a: usize) -> bool {
        self.requires[a]
    }

    // ---- primitive ops -------------------------------------------------

    /// Element-wise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (&self.values[a.0], &self.values[b.0]);
        assert_eq!(am.shape(), bm.shape());
        let v = self
            .arena
            .map2(am.rows(), am.cols(), am.data(), bm.data(), |x, y| x + y);
        let r = self.req(a.0) || self.req(b.0);
        self.push(v, Op::Add(a.0, b.0), r)
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (&self.values[a.0], &self.values[b.0]);
        assert_eq!(am.shape(), bm.shape());
        let v = self
            .arena
            .map2(am.rows(), am.cols(), am.data(), bm.data(), |x, y| x - y);
        let r = self.req(a.0) || self.req(b.0);
        self.push(v, Op::Sub(a.0, b.0), r)
    }

    /// Element-wise product.
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (&self.values[a.0], &self.values[b.0]);
        assert_eq!(am.shape(), bm.shape());
        let v = self
            .arena
            .map2(am.rows(), am.cols(), am.data(), bm.data(), |x, y| x * y);
        let r = self.req(a.0) || self.req(b.0);
        self.push(v, Op::Hadamard(a.0, b.0), r)
    }

    /// Broadcast-add a `1 x C` row (bias) to every row of `x`.
    pub fn add_row(&mut self, x: Var, row: Var) -> Var {
        let xm = &self.values[x.0];
        let rm = &self.values[row.0];
        assert_eq!(rm.rows(), 1);
        assert_eq!(rm.cols(), xm.cols());
        let mut v = self.arena.copy_of(xm);
        for i in 0..v.rows() {
            let dst = v.row_mut(i);
            for (d, &s) in dst.iter_mut().zip(rm.row(0)) {
                *d += s;
            }
        }
        let r = self.req(x.0) || self.req(row.0);
        self.push(v, Op::AddRow(x.0, row.0), r)
    }

    /// Multiply by a compile-time constant.
    pub fn scale(&mut self, x: Var, alpha: f64) -> Var {
        let v = self.arena.map_of(&self.values[x.0], |t| t * alpha);
        let r = self.req(x.0);
        self.push(v, Op::Scale(x.0, alpha), r)
    }

    /// Multiply `x` by a learnable scalar (a `1x1` node).
    pub fn scalar_mul(&mut self, scalar: Var, x: Var) -> Var {
        let sm = &self.values[scalar.0];
        assert_eq!(sm.shape(), (1, 1), "scalar_mul expects a 1x1 scalar node");
        let s = sm.get(0, 0);
        let v = self.arena.map_of(&self.values[x.0], |t| t * s);
        let r = self.req(scalar.0) || self.req(x.0);
        self.push(v, Op::ScalarMul(scalar.0, x.0), r)
    }

    /// Dense matrix product `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (&self.values[a.0], &self.values[b.0]);
        let mut v = Matrix::from_vec(am.rows(), bm.cols(), self.arena.take(am.rows() * bm.cols()));
        am.matmul_into(bm, &mut v);
        let r = self.req(a.0) || self.req(b.0);
        self.push(v, Op::MatMul(a.0, b.0), r)
    }

    /// Dense product with transposed right operand `a @ b^T`.
    pub fn matmul_tb(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (&self.values[a.0], &self.values[b.0]);
        let mut v = Matrix::from_vec(am.rows(), bm.rows(), self.arena.take(am.rows() * bm.rows()));
        am.matmul_tb_into(bm, &mut v);
        let r = self.req(a.0) || self.req(b.0);
        self.push(v, Op::MatMulTb(a.0, b.0), r)
    }

    /// Sparse × dense product `pair.fwd @ x`.
    pub fn spmm(&mut self, pair: &SpPair, x: Var) -> Var {
        let xm = &self.values[x.0];
        let mut v = Matrix::from_vec(
            pair.fwd.rows(),
            xm.cols(),
            self.arena.take(pair.fwd.rows() * xm.cols()),
        );
        pair.fwd.spmm_into(xm, &mut v);
        let r = self.req(x.0);
        self.push(v, Op::SpMm(pair.clone(), x.0), r)
    }

    /// Fused SGC layer tail `act((adj @ x) @ w + bias)` — one tape node in
    /// place of the `spmm → matmul → add_row → activation` chain, bitwise
    /// identical to it (see [`crate::fused`]). `adj: None` skips the
    /// propagation (a plain dense layer). `bias` must be a `1 x cols(w)`
    /// node.
    pub fn spmm_bias_act(
        &mut self,
        adj: Option<&SpPair>,
        x: Var,
        w: Var,
        bias: Var,
        act: FusedAct,
    ) -> Var {
        let (n, f) = self.values[x.0].shape();
        let d = self.values[w.0].cols();
        assert_eq!(
            self.values[bias.0].shape(),
            (1, d),
            "spmm_bias_act expects a 1x{d} bias node"
        );
        let mut h = adj.map(|_| Matrix::from_vec(n, f, self.arena.take(n * f)));
        let mut z = act
            .needs_preactivation()
            .then(|| Matrix::from_vec(n, d, self.arena.take(n * d)));
        let mut y = Matrix::from_vec(n, d, self.arena.take(n * d));
        fused::spmm_bias_act_into(
            adj.map(|p| p.fwd.as_ref()),
            &self.values[x.0],
            &self.values[w.0],
            self.values[bias.0].row(0),
            act,
            h.as_mut(),
            z.as_mut(),
            &mut y,
            crate::parallel::default_threads(),
        );
        let r = self.req(x.0) || self.req(w.0) || self.req(bias.0);
        self.push(
            y,
            Op::SpmmBiasAct {
                adj: adj.cloned(),
                x: x.0,
                w: w.0,
                bias: bias.0,
                act,
                h,
                z,
            },
            r,
        )
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.arena.map_of(&self.values[x.0], |t| t.max(0.0));
        let r = self.req(x.0);
        self.push(v, Op::Relu(x.0), r)
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&mut self, x: Var, alpha: f64) -> Var {
        let v = self
            .arena
            .map_of(&self.values[x.0], |t| if t > 0.0 { t } else { alpha * t });
        let r = self.req(x.0);
        self.push(v, Op::LeakyRelu(x.0, alpha), r)
    }

    /// Exponential linear unit.
    pub fn elu(&mut self, x: Var, alpha: f64) -> Var {
        let v = self.arena.map_of(&self.values[x.0], |t| {
            if t > 0.0 {
                t
            } else {
                alpha * (t.exp() - 1.0)
            }
        });
        let r = self.req(x.0);
        self.push(v, Op::Elu(x.0, alpha), r)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let v = self.arena.map_of(&self.values[x.0], sigmoid);
        let r = self.req(x.0);
        self.push(v, Op::Sigmoid(x.0), r)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: Var) -> Var {
        let v = self.arena.map_of(&self.values[x.0], f64::tanh);
        let r = self.req(x.0);
        self.push(v, Op::Tanh(x.0), r)
    }

    /// Gather rows of `x` by index (duplicates allowed).
    pub fn gather_rows(&mut self, x: Var, idx: Arc<Vec<usize>>) -> Var {
        let xm = &self.values[x.0];
        let c = xm.cols();
        let mut buf = self.arena.take(idx.len() * c);
        for (o, &i) in idx.iter().enumerate() {
            buf[o * c..(o + 1) * c].copy_from_slice(xm.row(i));
        }
        let v = Matrix::from_vec(idx.len(), c, buf);
        let r = self.req(x.0);
        self.push(v, Op::GatherRows(x.0, idx), r)
    }

    /// Replace rows `idx` of `x` with the learnable `token` (a `1 x C` node).
    ///
    /// This is the `[MASK]` token mechanism of Eq. 1: masked node attributes
    /// are substituted by a shared learnable vector.
    pub fn replace_rows(&mut self, x: Var, token: Var, idx: Arc<Vec<usize>>) -> Var {
        let tm = &self.values[token.0];
        assert_eq!(tm.rows(), 1);
        assert_eq!(tm.cols(), self.values[x.0].cols());
        let mut v = self.arena.copy_of(&self.values[x.0]);
        for &i in idx.iter() {
            v.set_row(i, self.values[token.0].row(0));
        }
        let r = self.req(x.0) || self.req(token.0);
        self.push(
            v,
            Op::ReplaceRows {
                x: x.0,
                token: token.0,
                idx,
            },
            r,
        )
    }

    /// Inverted dropout with keep-probability `1 - p`; identity when `p == 0`.
    pub fn dropout(&mut self, x: Var, p: f64, rng: &mut impl Rng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        if p == 0.0 {
            return x;
        }
        let scale = 1.0 / (1.0 - p);
        let xm = &self.values[x.0];
        let mut mask = self.arena.take(xm.len());
        for m in mask.iter_mut() {
            *m = if rng.gen::<f64>() < p { 0.0 } else { scale };
        }
        let v = self
            .arena
            .map2(xm.rows(), xm.cols(), xm.data(), &mask, |v, m| v * m);
        let r = self.req(x.0);
        self.push(v, Op::Dropout(x.0, Arc::new(mask)), r)
    }

    /// Sum of all entries, as a `1x1`.
    pub fn sum(&mut self, x: Var) -> Var {
        let v = self.arena.scalar(self.values[x.0].sum());
        let r = self.req(x.0);
        self.push(v, Op::Sum(x.0), r)
    }

    /// Mean of all entries, as a `1x1`.
    pub fn mean(&mut self, x: Var) -> Var {
        let m = &self.values[x.0];
        let v = self.arena.scalar(m.sum() / m.len() as f64);
        let r = self.req(x.0);
        self.push(v, Op::Mean(x.0), r)
    }

    /// Sum of squared entries, as a `1x1` (for L2 penalties).
    pub fn sq_sum(&mut self, x: Var) -> Var {
        let v = self.arena.scalar(self.values[x.0].sq_sum());
        let r = self.req(x.0);
        self.push(v, Op::SqSum(x.0), r)
    }

    /// L2-normalise every row (zero rows stay zero).
    pub fn row_normalize(&mut self, x: Var) -> Var {
        let mut v = self.arena.copy_of(&self.values[x.0]);
        for i in 0..v.rows() {
            let n = v.row_norm(i);
            if n > 1e-12 {
                for t in v.row_mut(i) {
                    *t /= n;
                }
            }
        }
        let r = self.req(x.0);
        self.push(v, Op::RowNormalize(x.0), r)
    }

    /// Row-wise softmax (used on the `1 x R` relation-weight vectors).
    pub fn softmax_row(&mut self, x: Var) -> Var {
        let mut v = self.arena.copy_of(&self.values[x.0]);
        for i in 0..v.rows() {
            let row = v.row_mut(i);
            let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            for t in row.iter_mut() {
                *t = (*t - mx).exp();
                z += *t;
            }
            for t in row.iter_mut() {
                *t /= z;
            }
        }
        let r = self.req(x.0);
        self.push(v, Op::SoftmaxRow(x.0), r)
    }

    /// Extract entry `(i, j)` as a `1x1` node.
    pub fn entry(&mut self, x: Var, i: usize, j: usize) -> Var {
        let v = self.arena.scalar(self.values[x.0].get(i, j));
        let r = self.req(x.0);
        self.push(v, Op::Entry(x.0, i, j), r)
    }

    // ---- composite losses ----------------------------------------------

    /// Scaled-cosine reconstruction error (Eq. 4):
    /// `mean_{i in idx} (1 - cos(x_i, target_i))^eta`.
    ///
    /// Gradients flow to `x` only; `target` is the (constant) original
    /// attribute matrix.
    pub fn scaled_cosine_loss(
        &mut self,
        x: Var,
        target: Arc<Matrix>,
        idx: Arc<Vec<usize>>,
        eta: f64,
    ) -> Var {
        assert!(eta >= 1.0, "eta must be >= 1 (paper constraint)");
        assert!(!idx.is_empty(), "scaled_cosine_loss needs at least one row");
        let xm = &self.values[x.0];
        assert_eq!(xm.shape(), target.shape());
        let mut total = 0.0;
        for &i in idx.iter() {
            let c = crate::matrix::cosine(xm.row(i), target.row(i));
            total += (1.0 - c).max(0.0).powf(eta);
        }
        let v = self.arena.scalar(total / idx.len() as f64);
        let r = self.req(x.0);
        self.push(
            v,
            Op::ScaledCosine {
                x: x.0,
                target,
                idx,
                eta,
            },
            r,
        )
    }

    /// Negative-sampled edge cross-entropy (Eq. 7): for each masked edge
    /// `(u, v)` with negatives `v'_1..v'_q`, minimise
    /// `-log softmax(z_u . z_v over {z_u . z_v} ∪ {z_u . z_{v'}})`,
    /// averaged over edges. `negs` holds `q` node ids per positive edge,
    /// laid out contiguously.
    pub fn edge_nce_loss(
        &mut self,
        z: Var,
        pos: Arc<Vec<(usize, usize)>>,
        negs: Arc<Vec<usize>>,
        q: usize,
    ) -> Var {
        assert!(
            !pos.is_empty(),
            "edge_nce_loss needs at least one positive edge"
        );
        assert_eq!(
            negs.len(),
            pos.len() * q,
            "need q negatives per positive edge"
        );
        let zm = &self.values[z.0];
        let mut total = 0.0;
        let mut scores = Vec::with_capacity(q + 1);
        for (e, &(u, v)) in pos.iter().enumerate() {
            let zu = zm.row(u);
            let s0 = dot(zu, zm.row(v));
            let mut lse_max = s0;
            scores.clear();
            scores.push(s0);
            for &n in &negs[e * q..(e + 1) * q] {
                let s = dot(zu, zm.row(n));
                lse_max = lse_max.max(s);
                scores.push(s);
            }
            let lse = lse_max + scores.iter().map(|s| (s - lse_max).exp()).sum::<f64>().ln();
            total += lse - s0;
        }
        let v = self.arena.scalar(total / pos.len() as f64);
        let r = self.req(z.0);
        self.push(
            v,
            Op::EdgeNce {
                z: z.0,
                pos,
                negs,
                q,
            },
            r,
        )
    }

    /// Dual-view InfoNCE (Eq. 17): anchor `a_i` attracts `b_i` and repels
    /// `a_j`/`b_j` for `q` sampled `j` per anchor (`negs` is `N*q` ids).
    /// The positive term is included in the denominator for stability
    /// (standard InfoNCE; the paper's Eq. 17 omits it).
    pub fn info_nce_loss(
        &mut self,
        a: Var,
        b: Var,
        negs: Arc<Vec<usize>>,
        q: usize,
        tau: f64,
    ) -> Var {
        let am = &self.values[a.0];
        let bm = &self.values[b.0];
        assert_eq!(am.shape(), bm.shape());
        assert!(tau > 0.0);
        let n = am.rows();
        assert_eq!(negs.len(), n * q, "need q contrast nodes per anchor");
        let mut total = 0.0;
        let mut scores = Vec::with_capacity(1 + 2 * q);
        for i in 0..n {
            let ai = am.row(i);
            let pos = dot(ai, bm.row(i)) / tau;
            let mut mx = pos;
            scores.clear();
            scores.push(pos);
            for &j in &negs[i * q..(i + 1) * q] {
                let s1 = dot(ai, am.row(j)) / tau;
                let s2 = dot(ai, bm.row(j)) / tau;
                mx = mx.max(s1).max(s2);
                scores.push(s1);
                scores.push(s2);
            }
            let lse = mx + scores.iter().map(|s| (s - mx).exp()).sum::<f64>().ln();
            total += lse - pos;
        }
        let v = self.arena.scalar(total / n as f64);
        let r = self.req(a.0) || self.req(b.0);
        self.push(
            v,
            Op::InfoNce {
                a: a.0,
                b: b.0,
                negs,
                q,
                tau,
            },
            r,
        )
    }

    /// Mean squared error against a constant target.
    pub fn mse_loss(&mut self, x: Var, target: Arc<Matrix>) -> Var {
        let xm = &self.values[x.0];
        assert_eq!(xm.shape(), target.shape());
        let mut total = 0.0;
        for (a, b) in xm.data().iter().zip(target.data()) {
            let d = a - b;
            total += d * d;
        }
        let v = self.arena.scalar(total / xm.len() as f64);
        let r = self.req(x.0);
        self.push(v, Op::FrobMse(x.0, target), r)
    }

    /// Element-wise binary cross-entropy on logits against a constant 0/1
    /// target, with positive entries weighted by `pos_weight`.
    pub fn bce_logits_loss(&mut self, x: Var, target: Arc<Matrix>, pos_weight: f64) -> Var {
        let xm = &self.values[x.0];
        assert_eq!(xm.shape(), target.shape());
        let mut total = 0.0;
        for (&l, &t) in xm.data().iter().zip(target.data()) {
            // Numerically stable: max(l,0) - l*t + ln(1+e^{-|l|}), weighted.
            let w = if t > 0.5 { pos_weight } else { 1.0 };
            total += w * (l.max(0.0) - l * t + (-l.abs()).exp().ln_1p());
        }
        let v = self.arena.scalar(total / xm.len() as f64);
        let r = self.req(x.0);
        self.push(
            v,
            Op::BceLogits {
                x: x.0,
                target,
                pos_weight,
            },
            r,
        )
    }

    // ---- backward -------------------------------------------------------

    /// Back-propagate from a scalar (`1x1`) loss node, filling gradients for
    /// every differentiable ancestor.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.values[loss.0].shape(),
            (1, 1),
            "backward expects a scalar loss"
        );
        let arena = &mut self.arena;
        for g in &mut self.grads {
            if let Some(m) = g.take() {
                arena.put(m);
            }
        }
        self.grads[loss.0] = Some(self.arena.scalar(1.0));
        for id in (0..=loss.0).rev() {
            if !self.requires[id] {
                continue;
            }
            let Some(g) = self.grads[id].take() else {
                continue;
            };
            self.dispatch_backward(id, &g);
            self.grads[id] = Some(g);
        }
    }

    /// Reverse sweep from externally supplied gradient seeds.
    ///
    /// The task-graph scheduler records each (view × relation) pass on its
    /// own tape; the coupling tape imports the pass outputs as leaves, runs
    /// its own [`Tape::backward`], and hands each task the gradients of its
    /// imported leaves. This entry point replays the task tape from those
    /// seeds: all gradients are cleared, every `(node, gradient)` seed is
    /// accumulated (duplicate nodes add in seed order), and then one
    /// reverse sweep runs from the highest seeded node downward — the exact
    /// loop `backward` uses, so a single `(loss, [[1.0]])` seed reproduces
    /// it bitwise. With no seeds the tape's gradients are simply cleared.
    pub fn backward_seeded(&mut self, seeds: &[(Var, &Matrix)]) {
        let arena = &mut self.arena;
        for g in &mut self.grads {
            if let Some(m) = g.take() {
                arena.put(m);
            }
        }
        let mut top = 0usize;
        for (v, seed) in seeds {
            assert_eq!(
                self.values[v.0].shape(),
                seed.shape(),
                "gradient seed shape mismatch"
            );
            let delta = self.arena.copy_of(seed);
            match &mut self.grads[v.0] {
                Some(g) => {
                    g.add_scaled(&delta, 1.0);
                    self.arena.put(delta);
                }
                slot @ None => *slot = Some(delta),
            }
            top = top.max(v.0);
        }
        if seeds.is_empty() {
            return;
        }
        for id in (0..=top).rev() {
            if !self.requires[id] {
                continue;
            }
            let Some(g) = self.grads[id].take() else {
                continue;
            };
            self.dispatch_backward(id, &g);
            self.grads[id] = Some(g);
        }
    }

    /// Accumulate the gradient `src` holds for `src_var` into this tape's
    /// slot for `var` — the primitive behind fixed-order cross-tape
    /// gradient reduction. A missing source gradient is a no-op; a missing
    /// destination slot is initialised from an arena copy, so repeated
    /// merges in a fixed order reproduce a single tape's accumulation
    /// bitwise.
    pub fn add_grad_from(&mut self, var: Var, src: &Tape, src_var: Var) {
        let Some(sg) = src.grads[src_var.0].as_ref() else {
            return;
        };
        assert_eq!(
            self.values[var.0].shape(),
            sg.shape(),
            "cross-tape gradient shape mismatch"
        );
        match &mut self.grads[var.0] {
            Some(g) => g.add_scaled(sg, 1.0),
            slot @ None => *slot = Some(self.arena.copy_of(sg)),
        }
    }

    fn acc(&mut self, id: usize, delta: Matrix) {
        if !self.requires[id] {
            self.arena.put(delta);
            return;
        }
        match &mut self.grads[id] {
            Some(g) => {
                g.add_scaled(&delta, 1.0);
                self.arena.put(delta);
            }
            slot @ None => *slot = Some(delta),
        }
    }

    fn acc_entry(&mut self, id: usize, i: usize, j: usize, delta: f64) {
        if !self.requires[id] {
            return;
        }
        let (r, c) = self.values[id].shape();
        let arena = &mut self.arena;
        let g = self.grads[id].get_or_insert_with(|| arena.zeros(r, c));
        g.set(i, j, g.get(i, j) + delta);
    }

    #[allow(clippy::too_many_lines)]
    fn dispatch_backward(&mut self, id: usize, g: &Matrix) {
        // `ops[id]` is moved out temporarily to appease the borrow checker;
        // ops are cheap to move (indices + Arc's).
        let op = std::mem::replace(&mut self.ops[id], Op::Leaf);
        match &op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                let ga = self.arena.copy_of(g);
                self.acc(*a, ga);
                let gb = self.arena.copy_of(g);
                self.acc(*b, gb);
            }
            Op::Sub(a, b) => {
                let ga = self.arena.copy_of(g);
                self.acc(*a, ga);
                let gb = self.arena.map_of(g, |t| -t);
                self.acc(*b, gb);
            }
            Op::Hadamard(a, b) => {
                let (r, c) = g.shape();
                let ga = self
                    .arena
                    .map2(r, c, g.data(), self.values[*b].data(), |x, y| x * y);
                let gb = self
                    .arena
                    .map2(r, c, g.data(), self.values[*a].data(), |x, y| x * y);
                self.acc(*a, ga);
                self.acc(*b, gb);
            }
            Op::AddRow(x, row) => {
                let gx = self.arena.copy_of(g);
                self.acc(*x, gx);
                if self.requires[*row] {
                    let mut gr = self.arena.zeros(1, g.cols());
                    for i in 0..g.rows() {
                        let src = g.row(i);
                        for (d, &s) in gr.row_mut(0).iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    self.acc(*row, gr);
                }
            }
            Op::Scale(x, alpha) => {
                let gx = self.arena.map_of(g, |t| t * alpha);
                self.acc(*x, gx);
            }
            Op::ScalarMul(s, x) => {
                let sv = self.values[*s].get(0, 0);
                let gx = self.arena.map_of(g, |t| t * sv);
                self.acc(*x, gx);
                if self.requires[*s] {
                    let gs = g
                        .data()
                        .iter()
                        .zip(self.values[*x].data())
                        .map(|(&gg, &xx)| gg * xx)
                        .sum();
                    let gs = self.arena.scalar(gs);
                    self.acc(*s, gs);
                }
            }
            Op::MatMul(a, b) => {
                if self.requires[*a] {
                    let bm = &self.values[*b];
                    let mut ga = Matrix::from_vec(
                        g.rows(),
                        bm.rows(),
                        self.arena.take(g.rows() * bm.rows()),
                    );
                    g.matmul_tb_into(bm, &mut ga);
                    self.acc(*a, ga);
                }
                if self.requires[*b] {
                    let am = &self.values[*a];
                    let mut gb = Matrix::from_vec(
                        am.cols(),
                        g.cols(),
                        self.arena.take(am.cols() * g.cols()),
                    );
                    am.matmul_ta_into(g, &mut gb);
                    self.acc(*b, gb);
                }
            }
            Op::MatMulTb(a, b) => {
                if self.requires[*a] {
                    let bm = &self.values[*b];
                    let mut ga = Matrix::from_vec(
                        g.rows(),
                        bm.cols(),
                        self.arena.take(g.rows() * bm.cols()),
                    );
                    g.matmul_into(bm, &mut ga);
                    self.acc(*a, ga);
                }
                if self.requires[*b] {
                    let am = &self.values[*a];
                    let mut gb = Matrix::from_vec(
                        g.cols(),
                        am.cols(),
                        self.arena.take(g.cols() * am.cols()),
                    );
                    g.matmul_ta_into(am, &mut gb);
                    self.acc(*b, gb);
                }
            }
            Op::SpMm(pair, x) => {
                if self.requires[*x] {
                    let mut gx = Matrix::from_vec(
                        pair.bwd.rows(),
                        g.cols(),
                        self.arena.take(pair.bwd.rows() * g.cols()),
                    );
                    pair.bwd.spmm_into(g, &mut gx);
                    self.acc(*x, gx);
                }
            }
            Op::SpmmBiasAct {
                adj,
                x,
                w,
                bias,
                act,
                h,
                z,
            } => {
                // The node's `requires` is the OR of its inputs', so at
                // least one of these holds whenever dispatch reaches here.
                let need_x = self.requires[*x];
                let need_w = self.requires[*w];
                let need_b = self.requires[*bias];
                let (n, d) = g.shape();
                // dz: activation backward, element for element identical to
                // the matching tape activation op.
                let y = &self.values[id];
                let mut dz_buf = self.arena.take(n * d);
                match z {
                    Some(zm) => {
                        for (((o, &gg), &yy), &zz) in
                            dz_buf.iter_mut().zip(g.data()).zip(y.data()).zip(zm.data())
                        {
                            *o = act.apply_grad(gg, yy, zz);
                        }
                    }
                    None => {
                        for ((o, &gg), &yy) in dz_buf.iter_mut().zip(g.data()).zip(y.data()) {
                            *o = act.apply_grad(gg, yy, 0.0);
                        }
                    }
                }
                let dz = Matrix::from_vec(n, d, dz_buf);
                // db: row-ascending column sums (AddRow backward).
                if need_b {
                    let mut db = self.arena.zeros(1, d);
                    for i in 0..n {
                        let src = dz.row(i);
                        for (o, &s) in db.row_mut(0).iter_mut().zip(src) {
                            *o += s;
                        }
                    }
                    self.acc(*bias, db);
                }
                // dW = h^T @ dz, with h the propagated features (or the
                // input itself when there was no propagation).
                if need_w {
                    let h_eff = h.as_ref().unwrap_or(&self.values[*x]);
                    let f = h_eff.cols();
                    let mut dw = Matrix::from_vec(f, d, self.arena.take(f * d));
                    h_eff.matmul_ta_into(&dz, &mut dw);
                    self.acc(*w, dw);
                }
                // dx = adj^T @ (dz @ w^T) — MatMul then SpMm backward.
                if need_x {
                    let wm = &self.values[*w];
                    let f = wm.rows();
                    let mut dh = Matrix::from_vec(n, f, self.arena.take(n * f));
                    dz.matmul_tb_into(wm, &mut dh);
                    match adj {
                        Some(pair) => {
                            let mut dx = Matrix::from_vec(n, f, self.arena.take(n * f));
                            pair.bwd.spmm_into(&dh, &mut dx);
                            self.arena.put(dh);
                            self.acc(*x, dx);
                        }
                        None => self.acc(*x, dh),
                    }
                }
                self.arena.put(dz);
            }
            Op::Relu(x) => {
                let (r, c) = g.shape();
                let gx = self
                    .arena
                    .map2(r, c, g.data(), self.values[*x].data(), |gg, xx| {
                        if xx > 0.0 {
                            gg
                        } else {
                            0.0
                        }
                    });
                self.acc(*x, gx);
            }
            Op::LeakyRelu(x, alpha) => {
                let (r, c) = g.shape();
                let gx = self
                    .arena
                    .map2(r, c, g.data(), self.values[*x].data(), |gg, xx| {
                        if xx > 0.0 {
                            gg
                        } else {
                            alpha * gg
                        }
                    });
                self.acc(*x, gx);
            }
            Op::Elu(x, alpha) => {
                let (r, c) = g.shape();
                let gx = self
                    .arena
                    .map2(r, c, g.data(), self.values[*x].data(), |gg, xx| {
                        if xx > 0.0 {
                            gg
                        } else {
                            gg * alpha * xx.exp()
                        }
                    });
                self.acc(*x, gx);
            }
            Op::Sigmoid(x) => {
                let (r, c) = g.shape();
                let gx = self
                    .arena
                    .map2(r, c, g.data(), self.values[id].data(), |gg, yy| {
                        gg * yy * (1.0 - yy)
                    });
                self.acc(*x, gx);
            }
            Op::Tanh(x) => {
                let (r, c) = g.shape();
                let gx = self
                    .arena
                    .map2(r, c, g.data(), self.values[id].data(), |gg, yy| {
                        gg * (1.0 - yy * yy)
                    });
                self.acc(*x, gx);
            }
            Op::GatherRows(x, idx) => {
                if self.requires[*x] {
                    let (r, c) = self.values[*x].shape();
                    let mut gx = self.arena.zeros(r, c);
                    for (o, &i) in idx.iter().enumerate() {
                        let src = g.row(o);
                        let dst = gx.row_mut(i);
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    self.acc(*x, gx);
                }
            }
            Op::ReplaceRows { x, token, idx } => {
                if self.requires[*x] {
                    let mut gx = self.arena.copy_of(g);
                    for &i in idx.iter() {
                        for t in gx.row_mut(i) {
                            *t = 0.0;
                        }
                    }
                    self.acc(*x, gx);
                }
                if self.requires[*token] {
                    let mut gt = self.arena.zeros(1, g.cols());
                    for &i in idx.iter() {
                        let src = g.row(i);
                        for (d, &s) in gt.row_mut(0).iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    self.acc(*token, gt);
                }
            }
            Op::Dropout(x, mask) => {
                let (r, c) = g.shape();
                let gx = self.arena.map2(r, c, g.data(), mask, |gg, m| gg * m);
                self.acc(*x, gx);
            }
            Op::Sum(x) => {
                let s = g.get(0, 0);
                let (r, c) = self.values[*x].shape();
                let gx = self.arena.full(r, c, s);
                self.acc(*x, gx);
            }
            Op::Mean(x) => {
                let (r, c) = self.values[*x].shape();
                let s = g.get(0, 0) / (r * c) as f64;
                let gx = self.arena.full(r, c, s);
                self.acc(*x, gx);
            }
            Op::SqSum(x) => {
                let s = g.get(0, 0);
                let alpha = 2.0 * s;
                let gx = self.arena.map_of(&self.values[*x], |t| t * alpha);
                self.acc(*x, gx);
            }
            Op::RowNormalize(x) => {
                if self.requires[*x] {
                    let xin = &self.values[*x];
                    let y = &self.values[id];
                    let mut gx = self.arena.zeros(xin.rows(), xin.cols());
                    for i in 0..xin.rows() {
                        let n = xin.row_norm(i);
                        if n <= 1e-12 {
                            continue;
                        }
                        let yi = y.row(i);
                        let gi = g.row(i);
                        let gy = dot(gi, yi);
                        let dst = gx.row_mut(i);
                        for ((d, &gg), &yy) in dst.iter_mut().zip(gi).zip(yi) {
                            *d = (gg - gy * yy) / n;
                        }
                    }
                    self.acc(*x, gx);
                }
            }
            Op::SoftmaxRow(x) => {
                if self.requires[*x] {
                    let y = &self.values[id];
                    let mut gx = self.arena.zeros(y.rows(), y.cols());
                    for i in 0..y.rows() {
                        let yi = y.row(i);
                        let gi = g.row(i);
                        let gy = dot(gi, yi);
                        let dst = gx.row_mut(i);
                        for ((d, &gg), &yy) in dst.iter_mut().zip(gi).zip(yi) {
                            *d = yy * (gg - gy);
                        }
                    }
                    self.acc(*x, gx);
                }
            }
            Op::Entry(x, i, j) => {
                self.acc_entry(*x, *i, *j, g.get(0, 0));
            }
            Op::ScaledCosine {
                x,
                target,
                idx,
                eta,
            } => {
                if self.requires[*x] {
                    let scale = g.get(0, 0) / idx.len() as f64;
                    let xm = &self.values[*x];
                    let mut gx = self.arena.zeros(xm.rows(), xm.cols());
                    for &i in idx.iter() {
                        let a = xm.row(i);
                        let b = target.row(i);
                        let na = dot(a, a).sqrt();
                        let nb = dot(b, b).sqrt();
                        if na < 1e-12 || nb < 1e-12 {
                            continue;
                        }
                        let c = dot(a, b) / (na * nb);
                        // d/da (1-c)^eta = -eta (1-c)^{eta-1} * dc/da
                        // dc/da = b/(na*nb) - c*a/na^2
                        let coef = -eta * (1.0 - c).max(0.0).powf(eta - 1.0) * scale;
                        let dst = gx.row_mut(i);
                        for ((d, &av), &bv) in dst.iter_mut().zip(a).zip(b) {
                            *d += coef * (bv / (na * nb) - c * av / (na * na));
                        }
                    }
                    self.acc(*x, gx);
                }
            }
            Op::EdgeNce { z, pos, negs, q } => {
                if self.requires[*z] {
                    let zm = &self.values[*z];
                    let scale = g.get(0, 0) / pos.len() as f64;
                    let mut gz = self.arena.zeros(zm.rows(), zm.cols());
                    let mut cands = Vec::with_capacity(q + 1);
                    let mut scores = Vec::with_capacity(q + 1);
                    let mut exps = Vec::with_capacity(q + 1);
                    for (e, &(u, v)) in pos.iter().enumerate() {
                        cands.clear();
                        cands.push(v);
                        cands.extend_from_slice(&negs[e * q..(e + 1) * q]);
                        scores.clear();
                        scores.extend(cands.iter().map(|&c| dot(zm.row(u), zm.row(c))));
                        let mx = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        exps.clear();
                        exps.extend(scores.iter().map(|s| (s - mx).exp()));
                        let zsum: f64 = exps.iter().sum();
                        for (k, &c) in cands.iter().enumerate() {
                            // dL/ds_k = p_k - [k == 0]
                            let p = exps[k] / zsum - if k == 0 { 1.0 } else { 0.0 };
                            let coef = p * scale;
                            // s_k = z_u . z_c  => grads to both rows.
                            for (d, &t) in gz.row_mut(u).iter_mut().zip(zm.row(c)) {
                                *d += coef * t;
                            }
                            for (d, &t) in gz.row_mut(c).iter_mut().zip(zm.row(u)) {
                                *d += coef * t;
                            }
                        }
                    }
                    self.acc(*z, gz);
                }
            }
            Op::InfoNce { a, b, negs, q, tau } => {
                let need_a = self.requires[*a];
                let need_b = self.requires[*b];
                if need_a || need_b {
                    let am = &self.values[*a];
                    let bm = &self.values[*b];
                    let n = am.rows();
                    let scale = g.get(0, 0) / n as f64;
                    let mut ga = self.arena.zeros(am.rows(), am.cols());
                    let mut gb = self.arena.zeros(bm.rows(), bm.cols());
                    let mut scores = Vec::with_capacity(1 + 2 * q);
                    let mut exps = Vec::with_capacity(1 + 2 * q);
                    for i in 0..n {
                        let ai = am.row(i);
                        // candidates: (row-source, index, weight sign)
                        // k = 0: positive (b, i); then per j: (a, j), (b, j)
                        let js = &negs[i * q..(i + 1) * q];
                        scores.clear();
                        scores.push(dot(ai, bm.row(i)) / tau);
                        for &j in js {
                            scores.push(dot(ai, am.row(j)) / tau);
                            scores.push(dot(ai, bm.row(j)) / tau);
                        }
                        let mx = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        exps.clear();
                        exps.extend(scores.iter().map(|s| (s - mx).exp()));
                        let zsum: f64 = exps.iter().sum();
                        let apply = |from_a: bool,
                                     row: usize,
                                     k: usize,
                                     ga: &mut Matrix,
                                     gb: &mut Matrix| {
                            let p = exps[k] / zsum - if k == 0 { 1.0 } else { 0.0 };
                            let coef = p * scale / tau;
                            let other = if from_a { am.row(row) } else { bm.row(row) };
                            for (d, &t) in ga.row_mut(i).iter_mut().zip(other) {
                                *d += coef * t;
                            }
                            let dst = if from_a {
                                ga.row_mut(row)
                            } else {
                                gb.row_mut(row)
                            };
                            for (d, &t) in dst.iter_mut().zip(ai) {
                                *d += coef * t;
                            }
                        };
                        apply(false, i, 0, &mut ga, &mut gb);
                        for (jj, &j) in js.iter().enumerate() {
                            apply(true, j, 1 + 2 * jj, &mut ga, &mut gb);
                            apply(false, j, 2 + 2 * jj, &mut ga, &mut gb);
                        }
                    }
                    if need_a {
                        self.acc(*a, ga);
                    } else {
                        self.arena.put(ga);
                    }
                    if need_b {
                        self.acc(*b, gb);
                    } else {
                        self.arena.put(gb);
                    }
                }
            }
            Op::FrobMse(x, target) => {
                if self.requires[*x] {
                    let xm = &self.values[*x];
                    let s = 2.0 * g.get(0, 0) / xm.len() as f64;
                    let (r, c) = xm.shape();
                    let gx = self
                        .arena
                        .map2(r, c, xm.data(), target.data(), |a, b| s * (a - b));
                    self.acc(*x, gx);
                }
            }
            Op::BceLogits {
                x,
                target,
                pos_weight,
            } => {
                if self.requires[*x] {
                    let xm = &self.values[*x];
                    let s = g.get(0, 0) / xm.len() as f64;
                    let (r, c) = xm.shape();
                    let gx = self.arena.map2(r, c, xm.data(), target.data(), |l, t| {
                        let w = if t > 0.5 { *pos_weight } else { 1.0 };
                        s * w * (sigmoid(l) - t)
                    });
                    self.acc(*x, gx);
                }
            }
        }
        self.ops[id] = op;
    }
}

/// Numerically benign logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umgad_rt::rand::rngs::SmallRng;
    use umgad_rt::rand::SeedableRng;

    #[test]
    fn add_backward_distributes() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = t.leaf(Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let c = t.add(a, b);
        let l = t.sum(c);
        t.backward(l);
        assert_eq!(t.grad(a).unwrap().data(), &[1.0, 1.0]);
        assert_eq!(t.grad(b).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn matmul_backward_shapes() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_fn(3, 4, |i, j| (i + j) as f64));
        let b = t.leaf(Matrix::from_fn(4, 2, |i, j| (i * j) as f64 + 1.0));
        let c = t.matmul(a, b);
        let l = t.sum(c);
        t.backward(l);
        assert_eq!(t.grad(a).unwrap().shape(), (3, 4));
        assert_eq!(t.grad(b).unwrap().shape(), (4, 2));
    }

    #[test]
    fn constant_gets_no_grad() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::full(2, 2, 1.0));
        let b = t.leaf(Matrix::full(2, 2, 2.0));
        let c = t.hadamard(a, b);
        let l = t.sum(c);
        t.backward(l);
        assert!(t.grad(a).is_none());
        assert_eq!(t.grad(b).unwrap().data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_masks_gradient() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]));
        let r = t.relu(a);
        let l = t.sum(r);
        t.backward(l);
        assert_eq!(t.grad(a).unwrap().data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn replace_rows_routes_grads() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_fn(3, 2, |i, _| i as f64 + 1.0));
        let tok = t.leaf(Matrix::from_vec(1, 2, vec![9.0, 9.0]));
        let idx = Arc::new(vec![1usize]);
        let y = t.replace_rows(x, tok, idx);
        assert_eq!(t.value(y).row(1), &[9.0, 9.0]);
        let l = t.sum(y);
        t.backward(l);
        // Masked row contributes no grad to x; token collects it instead.
        assert_eq!(t.grad(x).unwrap().data(), &[1.0, 1.0, 0.0, 0.0, 1.0, 1.0]);
        assert_eq!(t.grad(tok).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let mut t = Tape::new();
        let mut rng = SmallRng::seed_from_u64(7);
        let x = t.leaf(Matrix::full(2, 2, 3.0));
        let y = t.dropout(x, 0.0, &mut rng);
        assert_eq!(x, y);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let s = t.softmax_row(x);
        for i in 0..2 {
            let sum: f64 = t.value(s).row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scaled_cosine_zero_for_perfect_reconstruction() {
        let mut t = Tape::new();
        let target = Arc::new(Matrix::from_fn(4, 3, |i, j| (i + j) as f64 + 1.0));
        let x = t.leaf((*target).clone());
        let idx = Arc::new(vec![0usize, 2]);
        let l = t.scaled_cosine_loss(x, target, idx, 2.0);
        assert!(t.value(l).get(0, 0).abs() < 1e-12);
    }

    #[test]
    fn bce_logits_matches_manual() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        let target = Arc::new(Matrix::from_vec(1, 2, vec![1.0, 0.0]));
        let l = t.bce_logits_loss(x, target, 1.0);
        // BCE at logit 0 is ln 2 for both classes.
        assert!((t.value(l).get(0, 0) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn backward_twice_resets_grads() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::full(1, 1, 2.0));
        let b = t.hadamard(a, a);
        let l = t.sum(b);
        t.backward(l);
        let g1 = t.grad(a).unwrap().get(0, 0);
        t.backward(l);
        let g2 = t.grad(a).unwrap().get(0, 0);
        assert_eq!(g1, g2);
        assert_eq!(g1, 4.0);
    }

    #[test]
    fn tape_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<Tape>();
    }

    #[test]
    fn fused_node_matches_unfused_chain() {
        use crate::sparse::CsrMatrix;
        let adj = Arc::new(CsrMatrix::from_coo(
            3,
            3,
            vec![
                (0, 0, 0.5),
                (0, 1, 0.25),
                (1, 1, 1.0),
                (2, 0, 0.75),
                (2, 2, 0.3),
            ],
        ));
        let pair = SpPair::new(Arc::clone(&adj));
        let x0 = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64 / 3.0 - 0.4);
        let w0 = Matrix::from_fn(2, 2, |i, j| ((i + 2 * j) as f64 / 5.0) - 0.3);
        let b0 = Matrix::from_vec(1, 2, vec![0.1, -0.2]);

        let mut t1 = Tape::new();
        let (x, w, b) = (
            t1.leaf(x0.clone()),
            t1.leaf(w0.clone()),
            t1.leaf(b0.clone()),
        );
        let p = t1.spmm(&pair, x);
        let m = t1.matmul(p, w);
        let a = t1.add_row(m, b);
        let y = t1.elu(a, 1.0);
        let l = t1.sum(y);
        t1.backward(l);

        let mut t2 = Tape::new();
        let (x2, w2, b2) = (t2.leaf(x0), t2.leaf(w0), t2.leaf(b0));
        let y2 = t2.spmm_bias_act(Some(&pair), x2, w2, b2, FusedAct::Elu(1.0));
        let l2 = t2.sum(y2);
        t2.backward(l2);

        assert_eq!(t1.value(y).data(), t2.value(y2).data());
        assert_eq!(t1.grad(x).unwrap().data(), t2.grad(x2).unwrap().data());
        assert_eq!(t1.grad(w).unwrap().data(), t2.grad(w2).unwrap().data());
        assert_eq!(t1.grad(b).unwrap().data(), t2.grad(b2).unwrap().data());
    }

    #[test]
    fn recycled_tape_reproduces_fresh_results_bitwise() {
        let x0 = Matrix::from_fn(5, 3, |i, j| ((i * 3 + j) as f64).sin());
        let w0 = Matrix::from_fn(3, 2, |i, j| ((i + j) as f64).cos() / 2.0);

        let run = |t: &mut Tape| -> (Vec<f64>, Vec<f64>, Vec<f64>) {
            let x = t.leaf_from(&x0);
            let w = t.leaf_from(&w0);
            let m = t.matmul(x, w);
            let y = t.tanh(m);
            let l = t.sq_sum(y);
            t.backward(l);
            (
                t.value(y).data().to_vec(),
                t.grad(x).unwrap().data().to_vec(),
                t.grad(w).unwrap().data().to_vec(),
            )
        };

        let mut fresh = Tape::new();
        let expect = run(&mut fresh);

        let mut t = Tape::new();
        let first = run(&mut t);
        assert_eq!(first, expect);
        for _ in 0..3 {
            t.recycle();
            let again = run(&mut t);
            assert_eq!(again, expect);
        }
        let stats = t.arena_stats();
        assert!(stats.hits > 0, "recycled runs must hit the free-list");
    }

    #[test]
    fn warm_tape_steady_state_has_zero_arena_misses() {
        let x0 = Matrix::from_fn(4, 4, |i, j| (i as f64 - j as f64) / 3.0);
        let run = |t: &mut Tape| {
            let x = t.leaf_from(&x0);
            let w = t.leaf_from(&x0);
            let m = t.matmul(x, w);
            let y = t.relu(m);
            let l = t.mean(y);
            t.backward(l);
        };
        let mut t = Tape::new();
        run(&mut t); // warm-up: populates the free-list
        t.recycle();
        t.reset_arena_stats();
        run(&mut t);
        let stats = t.arena_stats();
        assert_eq!(stats.misses, 0, "steady state must be allocation-free");
        assert!(stats.hits > 0);
    }
}
