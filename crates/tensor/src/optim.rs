//! Parameters and first-order optimisers.
//!
//! Parameters live *outside* the tape (the tape is rebuilt every step). A
//! [`Param`] owns its value plus lazily allocated Adam moment buffers; the
//! training loop copies the value onto the tape, runs backward, then calls
//! [`Adam::step`]/[`Sgd::step`] with the gradient read off the tape.

use crate::matrix::Matrix;

/// A trainable parameter with optimiser state.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    m: Option<Matrix>,
    v: Option<Matrix>,
    t: u64,
}

impl Param {
    /// Wrap an initial value.
    pub fn new(value: Matrix) -> Self {
        Self {
            value,
            m: None,
            v: None,
            t: 0,
        }
    }

    /// Shape of the underlying matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.value.shape()
    }

    /// Reset optimiser state (keeps the value).
    pub fn reset_state(&mut self) {
        self.m = None;
        self.v = None;
        self.t = 0;
    }

    /// Export the full state — value, Adam moments, step counter — for a
    /// mid-training checkpoint. [`Param::from_state`] rebuilds a parameter
    /// whose next [`Adam::step`] behaves bit-for-bit as if training had
    /// never been interrupted.
    pub fn export_state(&self) -> ParamState {
        ParamState {
            value: self.value.clone(),
            m: self.m.clone(),
            v: self.v.clone(),
            t: self.t,
        }
    }

    /// Rebuild a parameter from an exported [`ParamState`].
    ///
    /// Validates internal consistency: moment buffers, when present, must
    /// match the value's shape and come as a pair with a positive step
    /// counter (Adam allocates both on the first step).
    pub fn from_state(state: ParamState) -> Result<Self, String> {
        let shape = state.value.shape();
        for (name, buf) in [("m", &state.m), ("v", &state.v)] {
            if let Some(b) = buf {
                if b.shape() != shape {
                    return Err(format!(
                        "Param state: moment {name} shape {:?} != value shape {shape:?}",
                        b.shape()
                    ));
                }
            }
        }
        match (state.m.is_some(), state.v.is_some(), state.t > 0) {
            (true, true, true) | (false, false, false) => {}
            _ => {
                return Err(format!(
                    "Param state: inconsistent optimiser state (m: {}, v: {}, t: {})",
                    state.m.is_some(),
                    state.v.is_some(),
                    state.t
                ))
            }
        }
        Ok(Self {
            value: state.value,
            m: state.m,
            v: state.v,
            t: state.t,
        })
    }
}

/// A [`Param`]'s complete serialisable state (value + Adam moments + step
/// counter). Produced by [`Param::export_state`], consumed by
/// [`Param::from_state`]; the persistence layer owns the on-disk encoding.
#[derive(Clone, Debug)]
pub struct ParamState {
    /// Parameter value.
    pub value: Matrix,
    /// First-moment buffer (`None` before the first optimiser step).
    pub m: Option<Matrix>,
    /// Second-moment buffer (`None` before the first optimiser step).
    pub v: Option<Matrix>,
    /// Adam step counter.
    pub t: u64,
}

/// Adam with decoupled (AdamW-style) weight decay.
#[derive(Clone, Copy, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Denominator fuzz.
    pub eps: f64,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f64,
}

impl Default for Adam {
    fn default() -> Self {
        Self {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

impl Adam {
    /// Adam with the given learning rate and defaults otherwise.
    pub fn with_lr(lr: f64) -> Self {
        Self {
            lr,
            ..Self::default()
        }
    }

    /// Paper setting: weight decay 0.01.
    pub fn paper_default() -> Self {
        Self {
            lr: 5e-3,
            weight_decay: 0.01,
            ..Self::default()
        }
    }

    /// Apply one update to `param` given its gradient.
    pub fn step(&self, param: &mut Param, grad: &Matrix) {
        assert_eq!(
            param.value.shape(),
            grad.shape(),
            "optimiser shape mismatch"
        );
        let (r, c) = grad.shape();
        param.t += 1;
        let m = param.m.get_or_insert_with(|| Matrix::zeros(r, c));
        let v = param.v.get_or_insert_with(|| Matrix::zeros(r, c));
        let t = param.t as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        let md = m.data_mut();
        let vd = v.data_mut();
        let pd = param.value.data_mut();
        for ((p, g), (mm, vv)) in pd.iter_mut().zip(grad.data()).zip(md.iter_mut().zip(vd)) {
            *mm = self.beta1 * *mm + (1.0 - self.beta1) * g;
            *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
            let mhat = *mm / bc1;
            let vhat = *vv / bc2;
            *p -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *p);
        }
    }
}

/// Learning-rate schedules for the training loop. Stateless: ask for the
/// rate at a given epoch.
#[derive(Clone, Copy, Debug)]
pub enum LrSchedule {
    /// Constant rate.
    Constant(f64),
    /// Linear warmup over `warmup` epochs to `peak`, then cosine decay to
    /// `floor` at `total` epochs.
    WarmupCosine {
        /// Peak learning rate reached after warmup.
        peak: f64,
        /// Final learning rate.
        floor: f64,
        /// Warmup epochs.
        warmup: usize,
        /// Total epochs of the schedule.
        total: usize,
    },
    /// Multiply by `gamma` every `every` epochs, starting from `initial`.
    Step {
        /// Starting rate.
        initial: f64,
        /// Decay factor per step.
        gamma: f64,
        /// Epochs between decays.
        every: usize,
    },
}

impl LrSchedule {
    /// Learning rate at `epoch` (0-based).
    pub fn at(&self, epoch: usize) -> f64 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::WarmupCosine {
                peak,
                floor,
                warmup,
                total,
            } => {
                if warmup > 0 && epoch < warmup {
                    peak * (epoch + 1) as f64 / warmup as f64
                } else {
                    let span = total.saturating_sub(warmup).max(1) as f64;
                    let t = (epoch.saturating_sub(warmup) as f64 / span).min(1.0);
                    floor + 0.5 * (peak - floor) * (1.0 + (std::f64::consts::PI * t).cos())
                }
            }
            LrSchedule::Step {
                initial,
                gamma,
                every,
            } => initial * gamma.powi((epoch / every.max(1)) as i32),
        }
    }
}

/// Clip a gradient to a maximum global L2 norm, in place. Returns the norm
/// before clipping. Standard protection against the occasional exploding
/// contrastive batch.
pub fn clip_grad_norm(grad: &mut Matrix, max_norm: f64) -> f64 {
    assert!(max_norm > 0.0);
    let norm = grad.frob_norm();
    if norm > max_norm {
        grad.scale_inplace(max_norm / norm);
    }
    norm
}

/// Plain SGD with optional L2 weight decay.
#[derive(Clone, Copy, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// L2 decay folded into the gradient.
    pub weight_decay: f64,
}

impl Sgd {
    /// SGD with the given learning rate and no decay.
    pub fn with_lr(lr: f64) -> Self {
        Self {
            lr,
            weight_decay: 0.0,
        }
    }

    /// Apply one update.
    pub fn step(&self, param: &mut Param, grad: &Matrix) {
        assert_eq!(
            param.value.shape(),
            grad.shape(),
            "optimiser shape mismatch"
        );
        let pd = param.value.data_mut();
        for (p, g) in pd.iter_mut().zip(grad.data()) {
            *p -= self.lr * (g + self.weight_decay * *p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)^2 with Adam; gradient is 2(x-3).
    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![0.0]));
        let opt = Adam::with_lr(0.1);
        for _ in 0..500 {
            let x = p.value.get(0, 0);
            let g = Matrix::from_vec(1, 1, vec![2.0 * (x - 3.0)]);
            opt.step(&mut p, &g);
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![10.0]));
        let opt = Sgd::with_lr(0.1);
        for _ in 0..200 {
            let x = p.value.get(0, 0);
            let g = Matrix::from_vec(1, 1, vec![2.0 * (x - 3.0)]);
            opt.step(&mut p, &g);
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![1.0]));
        let opt = Sgd {
            lr: 0.1,
            weight_decay: 0.5,
        };
        let zero_grad = Matrix::zeros(1, 1);
        opt.step(&mut p, &zero_grad);
        assert!((p.value.get(0, 0) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn warmup_cosine_shape() {
        let s = LrSchedule::WarmupCosine {
            peak: 1.0,
            floor: 0.1,
            warmup: 5,
            total: 25,
        };
        // Ramps up...
        assert!(s.at(0) < s.at(4));
        assert!((s.at(4) - 1.0).abs() < 1e-12);
        // ...then decays monotonically to the floor.
        assert!(s.at(10) > s.at(20));
        assert!((s.at(25) - 0.1).abs() < 1e-9);
        // Beyond the schedule it stays at the floor.
        assert!((s.at(100) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn step_schedule_decays() {
        let s = LrSchedule::Step {
            initial: 1.0,
            gamma: 0.5,
            every: 10,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(25), 0.25);
        assert_eq!(LrSchedule::Constant(0.3).at(1000), 0.3);
    }

    #[test]
    fn clip_grad_norm_caps_large_gradients() {
        let mut g = Matrix::from_vec(1, 2, vec![3.0, 4.0]); // norm 5
        let before = clip_grad_norm(&mut g, 1.0);
        assert_eq!(before, 5.0);
        assert!((g.frob_norm() - 1.0).abs() < 1e-12);
        // Small gradients untouched.
        let mut small = Matrix::from_vec(1, 2, vec![0.3, 0.4]);
        clip_grad_norm(&mut small, 1.0);
        assert_eq!(small.data(), &[0.3, 0.4]);
    }

    #[test]
    fn state_roundtrip_continues_training_bitwise() {
        // Train two copies: one straight through, one checkpointed at step
        // 50 and rebuilt from the exported state. Trajectories must match
        // to the bit.
        let opt = Adam::with_lr(0.1);
        let grad_at = |x: f64| Matrix::from_vec(1, 1, vec![2.0 * (x - 3.0)]);

        let mut straight = Param::new(Matrix::from_vec(1, 1, vec![0.0]));
        let mut interrupted = Param::new(Matrix::from_vec(1, 1, vec![0.0]));
        for _ in 0..50 {
            let g = grad_at(straight.value.get(0, 0));
            opt.step(&mut straight, &g);
            let g = grad_at(interrupted.value.get(0, 0));
            opt.step(&mut interrupted, &g);
        }
        let mut resumed = Param::from_state(interrupted.export_state()).unwrap();
        for _ in 0..50 {
            let g = grad_at(straight.value.get(0, 0));
            opt.step(&mut straight, &g);
            let g = grad_at(resumed.value.get(0, 0));
            opt.step(&mut resumed, &g);
        }
        assert_eq!(
            straight.value.get(0, 0).to_bits(),
            resumed.value.get(0, 0).to_bits(),
            "resumed Adam trajectory must be bitwise identical"
        );
        assert_eq!(resumed.t, 100);
    }

    #[test]
    fn from_state_rejects_inconsistent_moments() {
        let value = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        // m present without v.
        let bad = ParamState {
            value: value.clone(),
            m: Some(Matrix::zeros(1, 2)),
            v: None,
            t: 1,
        };
        assert!(Param::from_state(bad).is_err());
        // t > 0 with no moments.
        let bad = ParamState {
            value: value.clone(),
            m: None,
            v: None,
            t: 3,
        };
        assert!(Param::from_state(bad).is_err());
        // Moment shape mismatch.
        let bad = ParamState {
            value: value.clone(),
            m: Some(Matrix::zeros(2, 2)),
            v: Some(Matrix::zeros(2, 2)),
            t: 1,
        };
        assert!(Param::from_state(bad).is_err());
        // Fresh param state is fine.
        let ok = ParamState {
            value,
            m: None,
            v: None,
            t: 0,
        };
        assert!(Param::from_state(ok).is_ok());
    }

    #[test]
    fn reset_state_clears_moments() {
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![1.0]));
        let opt = Adam::default();
        opt.step(&mut p, &Matrix::from_vec(1, 1, vec![1.0]));
        assert!(p.m.is_some());
        p.reset_state();
        assert!(p.m.is_none());
        assert_eq!(p.t, 0);
    }
}
