//! Dense row-major `f64` matrices.
//!
//! This is the storage type used throughout the workspace: node attribute
//! matrices, hidden representations, weight matrices, and gradients are all
//! [`Matrix`] values. The implementation favours predictable cache behaviour
//! (row-major, `i-k-j` matmul loops) over cleverness; at the sizes UMGAD
//! works with (`|V|` up to ~46k rows, feature widths 16–128) this is the
//! dominant consideration.

use std::fmt;

/// Work threshold, in `f64` multiply-adds, below which the product kernels
/// (`matmul`, `matmul_ta`, `matmul_tb`, CSR `spmm`) stay on the calling
/// thread. Below this size the pool dispatch overhead exceeds the kernel
/// itself; above it the kernels fan out over the shared worker pool. The
/// cut keeps per-step weight-update products (width² ≤ 128² per node) serial
/// at test scales while every paper-scale propagation (`|V|` ≥ 10k rows ×
/// feature widths 16–128) takes the parallel path.
pub const PARALLEL_MIN_FLOPS: usize = 1 << 18;

/// Multiply-add count of an `a×b @ b×c` product, saturating on overflow.
#[inline]
pub(crate) fn madds(a: usize, b: usize, c: usize) -> usize {
    a.saturating_mul(b).saturating_mul(c)
}

/// Split a `rows x cols` row-major buffer into at most `parts` contiguous
/// row blocks of near-equal row count, each tagged with its starting row.
/// Used by the parallel kernels to hand each pool job a disjoint `&mut`
/// window of the output.
pub(crate) fn row_blocks(
    data: &mut [f64],
    rows: usize,
    cols: usize,
    parts: usize,
) -> Vec<(usize, &mut [f64])> {
    let parts = parts.clamp(1, rows.max(1));
    let base = rows / parts;
    let extra = rows % parts;
    let mut out = Vec::with_capacity(parts);
    let mut rest = data;
    let mut row = 0;
    for p in 0..parts {
        let take = base + usize::from(p < extra);
        let (block, tail) = rest.split_at_mut(take * cols);
        out.push((row, block));
        row += take;
        rest = tail;
    }
    out
}

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a row-major data vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the raw data vector.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Entry setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    ///
    /// Yields exactly [`Self::rows`] slices even when `cols == 0` (each row
    /// is then the empty slice) — a plain `chunks_exact(cols.max(1))` would
    /// yield zero rows for such degenerate matrices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        let cols = self.cols;
        (0..self.rows).map(move |i| &self.data[i * cols..(i + 1) * cols])
    }

    /// Copy `src` into row `i`.
    pub fn set_row(&mut self, i: usize, src: &[f64]) {
        assert_eq!(src.len(), self.cols);
        self.row_mut(i).copy_from_slice(src);
    }

    /// `self @ other` — standard matrix product.
    ///
    /// Above [`PARALLEL_MIN_FLOPS`] multiply-adds the product is computed by
    /// the row-partitioned tiled kernel on the shared worker pool; smaller
    /// products stay on the calling thread. Both paths accumulate every
    /// output element over `k` in ascending order, so the result is bitwise
    /// identical regardless of path or thread count.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self @ other` written into caller-provided storage (fully
    /// overwritten; stale contents are fine). Same dispatch and bitwise
    /// contract as [`Self::matmul`]; lets the tape arena reuse output
    /// buffers across epochs.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        let _span = umgad_rt::telemetry::span("kernel.matmul");
        let threads = crate::parallel::default_threads();
        if threads <= 1 || madds(self.rows, self.cols, other.cols) < PARALLEL_MIN_FLOPS {
            self.matmul_serial_into(other, out);
        } else {
            self.matmul_parallel_into(other, out, threads);
        }
    }

    /// Serial `self @ other` (`i-k-j` loop order, zero-skip on `a`).
    pub fn matmul_serial(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_serial_into(other, &mut out);
        out
    }

    fn matmul_serial_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul: output shape");
        out.data.fill(0.0);
        let n = other.cols;
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * n..(k + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
    }

    /// Parallel `self @ other` over `threads` row partitions of the output.
    ///
    /// Bitwise identical to [`Self::matmul_serial`] for every `threads`
    /// value: partitioning the *output* rows leaves each element's `f64`
    /// accumulation order untouched.
    pub fn matmul_parallel(&self, other: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_parallel_into(other, &mut out, threads);
        out
    }

    fn matmul_parallel_into(&self, other: &Matrix, out: &mut Matrix, threads: usize) {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul: output shape");
        out.data.fill(0.0);
        let n = other.cols;
        let blocks = row_blocks(&mut out.data, self.rows, n, threads);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = blocks
            .into_iter()
            .map(|(row0, block)| {
                Box::new(move || self.matmul_block_into(other, row0, block))
                    as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        umgad_rt::pool::global().run(jobs);
    }

    /// Tiled kernel for one output row block of `self @ other`.
    ///
    /// `k` is processed in panels of `K_TILE` so the touched rows of `other`
    /// stay cache-resident while the block's rows stream through. Every
    /// output element still accumulates over `k` in globally ascending
    /// order (panels are visited in order, `k` ascends within a panel),
    /// which keeps the result bitwise identical to the serial `i-k-j` loop.
    fn matmul_block_into(&self, other: &Matrix, row0: usize, block: &mut [f64]) {
        const K_TILE: usize = 64;
        let n = other.cols;
        if n == 0 {
            return;
        }
        let rows = block.len() / n;
        let mut k0 = 0;
        while k0 < self.cols {
            let k1 = (k0 + K_TILE).min(self.cols);
            for i in 0..rows {
                let arow = &self.row(row0 + i)[k0..k1];
                let orow = &mut block[i * n..(i + 1) * n];
                for (dk, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &other.data[(k0 + dk) * n..(k0 + dk + 1) * n];
                    for (o, &b) in orow.iter_mut().zip(brow) {
                        *o += a * b;
                    }
                }
            }
            k0 = k1;
        }
    }

    /// `self @ other^T` — product with the transpose of `other`.
    ///
    /// Dispatches between [`Self::matmul_tb_serial`] and
    /// [`Self::matmul_tb_parallel`]; both compute each output element as one
    /// [`dot`] call, so results are bitwise identical on every path.
    pub fn matmul_tb(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_tb_into(other, &mut out);
        out
    }

    /// `self @ other^T` written into caller-provided storage (fully
    /// overwritten). Same dispatch and bitwise contract as
    /// [`Self::matmul_tb`].
    pub fn matmul_tb_into(&self, other: &Matrix, out: &mut Matrix) {
        let _span = umgad_rt::telemetry::span("kernel.matmul_tb");
        let threads = crate::parallel::default_threads();
        if threads <= 1 || madds(self.rows, self.cols, other.rows) < PARALLEL_MIN_FLOPS {
            self.matmul_tb_serial_into(other, out);
        } else {
            self.matmul_tb_parallel_into(other, out, threads);
        }
    }

    /// Serial `self @ other^T` (row-by-row dot products).
    pub fn matmul_tb_serial(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_tb_serial_into(other, &mut out);
        out
    }

    fn matmul_tb_serial_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_tb: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_tb: output shape"
        );
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            for (j, brow) in other.rows_iter().enumerate() {
                orow[j] = dot(arow, brow);
            }
        }
    }

    /// Parallel `self @ other^T` over `threads` row partitions of the
    /// output. Bitwise identical to [`Self::matmul_tb_serial`].
    pub fn matmul_tb_parallel(&self, other: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_tb_parallel_into(other, &mut out, threads);
        out
    }

    fn matmul_tb_parallel_into(&self, other: &Matrix, out: &mut Matrix, threads: usize) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_tb: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "matmul_tb: output shape"
        );
        let n = other.rows;
        let blocks = row_blocks(&mut out.data, self.rows, n, threads);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = blocks
            .into_iter()
            .map(|(row0, block)| {
                Box::new(move || {
                    if n == 0 {
                        return;
                    }
                    for (i, orow) in block.chunks_exact_mut(n).enumerate() {
                        let arow = self.row(row0 + i);
                        for (j, brow) in other.rows_iter().enumerate() {
                            orow[j] = dot(arow, brow);
                        }
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        umgad_rt::pool::global().run(jobs);
    }

    /// `self^T @ other` — transpose-left product.
    ///
    /// Dispatches between [`Self::matmul_ta_serial`] and
    /// [`Self::matmul_ta_parallel`]; results are bitwise identical on both
    /// paths (each output element accumulates over `k` ascending, skipping
    /// the same zeros).
    pub fn matmul_ta(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_ta_into(other, &mut out);
        out
    }

    /// `self^T @ other` written into caller-provided storage (fully
    /// overwritten). Same dispatch and bitwise contract as
    /// [`Self::matmul_ta`].
    pub fn matmul_ta_into(&self, other: &Matrix, out: &mut Matrix) {
        let _span = umgad_rt::telemetry::span("kernel.matmul_ta");
        let threads = crate::parallel::default_threads();
        if threads <= 1 || madds(self.cols, self.rows, other.cols) < PARALLEL_MIN_FLOPS {
            self.matmul_ta_serial_into(other, out);
        } else {
            self.matmul_ta_parallel_into(other, out, threads);
        }
    }

    /// Serial `self^T @ other` (`k`-outer loop, zero-skip on `a`).
    pub fn matmul_ta_serial(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_ta_serial_into(other, &mut out);
        out
    }

    fn matmul_ta_serial_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_ta: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "matmul_ta: output shape"
        );
        out.data.fill(0.0);
        let n = other.cols;
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
    }

    /// Parallel `self^T @ other` over row partitions of the *output* (the
    /// columns of `self`): each job keeps the serial `k`-outer loop but
    /// touches only its own column span `[i0, i1)`, reading `self.row(k)
    /// [i0..i1]` contiguously. No transposed copy is materialised, so the
    /// kernel is allocation-free for arena-recycled outputs. Every output
    /// element accumulates over `k` ascending with the same zero-skip as
    /// the serial loop, so this is bitwise identical to
    /// [`Self::matmul_ta_serial`].
    pub fn matmul_ta_parallel(&self, other: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_ta_parallel_into(other, &mut out, threads);
        out
    }

    fn matmul_ta_parallel_into(&self, other: &Matrix, out: &mut Matrix, threads: usize) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_ta: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "matmul_ta: output shape"
        );
        out.data.fill(0.0);
        let n = other.cols;
        let blocks = row_blocks(&mut out.data, self.cols, n, threads);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = blocks
            .into_iter()
            .map(|(i0, block)| {
                Box::new(move || {
                    if n == 0 {
                        return;
                    }
                    let span = block.len() / n;
                    for k in 0..self.rows {
                        let arow = &self.row(k)[i0..i0 + span];
                        let brow = other.row(k);
                        for (di, &a) in arow.iter().enumerate() {
                            if a == 0.0 {
                                continue;
                            }
                            let orow = &mut block[di * n..(di + 1) * n];
                            for (o, &b) in orow.iter_mut().zip(brow) {
                                *o += a * b;
                            }
                        }
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        umgad_rt::pool::global().run(jobs);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise `self += alpha * other`.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f64) {
        assert_eq!(self.shape(), other.shape());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise sum, returning a new matrix.
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_scaled(other, 1.0);
        out
    }

    /// Element-wise difference, returning a new matrix.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_scaled(other, -1.0);
        out
    }

    /// Element-wise (Hadamard) product, returning a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scale every entry in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Scaled copy.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_inplace(alpha);
        out
    }

    /// Apply `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Apply `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn sq_sum(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.sq_sum().sqrt()
    }

    /// Maximum absolute entry (0 for empty matrices).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Gather the given rows into a new `idx.len() x cols` matrix.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (o, &i) in idx.iter().enumerate() {
            out.set_row(o, self.row(i));
        }
        out
    }

    /// L2 norm of row `i`.
    pub fn row_norm(&self, i: usize) -> f64 {
        dot(self.row(i), self.row(i)).sqrt()
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) distance between two rows.
#[inline]
pub fn l2_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// L1 distance between two rows.
#[inline]
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Cosine similarity between two rows, with an epsilon guard for zero rows.
#[inline]
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn from_fn_matches_manual() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.data(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::eye(2);
        assert_eq!(a.matmul(&i).data(), a.data());
        assert_eq!(i.matmul(&a).data(), a.data());
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tb_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(5, 4, |i, j| (i * j) as f64 - 1.0);
        let viat = a.matmul(&b.transpose());
        assert_eq!(a.matmul_tb(&b).data(), viat.data());
    }

    #[test]
    fn matmul_ta_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (2 * i + j) as f64);
        let b = Matrix::from_fn(4, 5, |i, j| (i * 2 + j) as f64);
        let viat = a.transpose().matmul(&b);
        assert_eq!(a.matmul_ta(&b).data(), viat.data());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(a.transpose().transpose().data(), a.data());
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scaled(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.sq_sum(), 30.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn gather_rows_selects() {
        let a = Matrix::from_fn(4, 2, |i, _| i as f64);
        let g = a.gather_rows(&[3, 1]);
        assert_eq!(g.data(), &[3.0, 3.0, 1.0, 1.0]);
    }

    #[test]
    fn rows_iter_yields_all_rows_even_with_zero_cols() {
        // Regression: chunks_exact(cols.max(1)) yielded 0 rows for a
        // rows x 0 matrix instead of `rows` empty slices.
        let degenerate = Matrix::zeros(3, 0);
        let rows: Vec<&[f64]> = degenerate.rows_iter().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.is_empty()));

        let normal = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let rows: Vec<&[f64]> = normal.rows_iter().collect();
        assert_eq!(rows, vec![&[0.0, 1.0, 2.0][..], &[3.0, 4.0, 5.0][..]]);
    }

    #[test]
    fn row_blocks_partition_evenly_and_tag_starts() {
        let mut data = vec![0.0; 10 * 3];
        let blocks = row_blocks(&mut data, 10, 3, 4);
        assert_eq!(blocks.len(), 4);
        let rows: Vec<usize> = blocks.iter().map(|(_, b)| b.len() / 3).collect();
        assert_eq!(rows, vec![3, 3, 2, 2]);
        let starts: Vec<usize> = blocks.iter().map(|(s, _)| *s).collect();
        assert_eq!(starts, vec![0, 3, 6, 8]);

        // More parts than rows: one block per row.
        let mut data = vec![0.0; 2 * 5];
        assert_eq!(row_blocks(&mut data, 2, 5, 8).len(), 2);
        // Degenerate shapes don't panic.
        assert_eq!(row_blocks(&mut [], 0, 3, 4).len(), 1);
        let mut data = vec![];
        assert_eq!(row_blocks(&mut data, 4, 0, 2).len(), 2);
    }

    #[test]
    fn parallel_kernels_match_serial_on_small_known_shapes() {
        let a = Matrix::from_fn(7, 5, |i, j| ((i * 5 + j) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(5, 9, |i, j| ((i * 9 + j) % 7) as f64 / 3.0);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                a.matmul_parallel(&b, threads).data(),
                a.matmul_serial(&b).data()
            );
        }
        let c = Matrix::from_fn(6, 5, |i, j| (i as f64 - j as f64) / 2.0);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                a.matmul_tb_parallel(&c, threads).data(),
                a.matmul_tb_serial(&c).data()
            );
        }
        let d = Matrix::from_fn(7, 4, |i, j| ((i + 2 * j) % 5) as f64 - 2.0);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                a.matmul_ta_parallel(&d, threads).data(),
                a.matmul_ta_serial(&d).data()
            );
        }
    }

    #[test]
    fn distance_helpers() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(l2_distance(&a, &b), 5.0);
        assert_eq!(l1_distance(&a, &b), 7.0);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
        assert!(cosine(&a, &b).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &b), 0.0);
    }
}
