//! Weight initialisation schemes.

use umgad_rt::rand::Rng;

use crate::matrix::Matrix;

/// Glorot/Xavier uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
}

/// i.i.d. normal entries via the Box–Muller transform (the `rand` build we
/// pin does not ship distribution adapters).
pub fn normal(rows: usize, cols: usize, mean: f64, std: f64, rng: &mut impl Rng) -> Matrix {
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Matrix::from_vec(rows, cols, data)
}

/// A single standard-normal draw.
pub fn normal_scalar(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use umgad_rt::rand::rngs::SmallRng;
    use umgad_rt::rand::SeedableRng;

    #[test]
    fn xavier_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = xavier_uniform(10, 20, &mut rng);
        let a = (6.0 / 30.0f64).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= a));
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = normal(100, 100, 1.0, 2.0, &mut rng);
        let n = m.len() as f64;
        let mean = m.sum() / n;
        let var = m
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn normal_odd_count() {
        let mut rng = SmallRng::seed_from_u64(3);
        let m = normal(3, 3, 0.0, 1.0, &mut rng);
        assert_eq!(m.len(), 9);
        assert!(m.is_finite());
    }
}
