//! Finite-difference gradient checks for every differentiable op.
//!
//! Each check builds a scalar loss from a parameter matrix, computes the
//! analytic gradient via the tape, then perturbs each entry by `±h` and
//! compares the central difference. Property tests draw random shapes and
//! values to cover the op space broadly.

use std::sync::Arc;

use umgad_rt::proptest::prelude::*;
use umgad_rt::rand::rngs::SmallRng;
use umgad_rt::rand::SeedableRng;
use umgad_tensor::{CsrMatrix, FusedAct, Matrix, SpPair, Tape, Var};

const H: f64 = 1e-5;
const TOL: f64 = 1e-4;

/// Check the analytic gradient of `build` (a scalar-valued graph over one
/// parameter) against central finite differences.
fn grad_check(param: &Matrix, build: impl Fn(&mut Tape, Var) -> Var) {
    let mut tape = Tape::new();
    let p = tape.leaf(param.clone());
    let loss = build(&mut tape, p);
    assert_eq!(tape.value(loss).shape(), (1, 1));
    tape.backward(loss);
    let analytic = tape.grad_or_zero(p);

    let eval = |m: &Matrix| -> f64 {
        let mut t = Tape::new();
        let pv = t.leaf(m.clone());
        let l = build(&mut t, pv);
        t.value(l).get(0, 0)
    };

    for i in 0..param.rows() {
        for j in 0..param.cols() {
            let mut up = param.clone();
            up.set(i, j, up.get(i, j) + H);
            let mut dn = param.clone();
            dn.set(i, j, dn.get(i, j) - H);
            let numeric = (eval(&up) - eval(&dn)) / (2.0 * H);
            let a = analytic.get(i, j);
            let denom = 1.0_f64.max(a.abs()).max(numeric.abs());
            assert!(
                ((a - numeric) / denom).abs() < TOL,
                "grad mismatch at ({i},{j}): analytic {a} vs numeric {numeric}"
            );
        }
    }
}

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    umgad_rt::proptest::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Matrix whose rows are bounded away from zero norm (needed for cosine and
/// row-normalise, whose gradients blow up at the origin).
fn nonzero_rows_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    small_matrix(rows, cols).prop_map(move |mut m| {
        for i in 0..rows {
            if m.row_norm(i) < 0.3 {
                m.set(i, 0, m.get(i, 0) + 1.0);
            }
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn grad_add_chain(p in small_matrix(3, 4)) {
        let c = Matrix::from_fn(3, 4, |i, j| (i + 2 * j) as f64 / 3.0);
        grad_check(&p, move |t, x| {
            let cv = t.constant(c.clone());
            let s = t.add(x, cv);
            let d = t.sub(s, x);
            let e = t.add(d, x);
            t.sum(e)
        });
    }

    #[test]
    fn grad_hadamard(p in small_matrix(2, 3)) {
        grad_check(&p, |t, x| {
            let y = t.hadamard(x, x);
            t.sum(y)
        });
    }

    #[test]
    fn grad_matmul_left(p in small_matrix(3, 2)) {
        let b = Matrix::from_fn(2, 4, |i, j| (i as f64 - j as f64) / 2.0);
        grad_check(&p, move |t, x| {
            let bv = t.constant(b.clone());
            let y = t.matmul(x, bv);
            t.mean(y)
        });
    }

    #[test]
    fn grad_matmul_right(p in small_matrix(2, 4)) {
        let a = Matrix::from_fn(3, 2, |i, j| (i * j) as f64 / 2.0 + 0.5);
        grad_check(&p, move |t, x| {
            let av = t.constant(a.clone());
            let y = t.matmul(av, x);
            t.mean(y)
        });
    }

    #[test]
    fn grad_matmul_tb_both_sides(p in small_matrix(3, 2)) {
        grad_check(&p, |t, x| {
            let y = t.matmul_tb(x, x); // 3x3 gram matrix — x appears twice
            t.sum(y)
        });
    }

    #[test]
    fn grad_spmm(p in small_matrix(4, 3)) {
        let a = CsrMatrix::from_coo(4, 4, vec![
            (0, 1, 0.5), (1, 0, 0.5), (1, 2, -1.0), (2, 3, 2.0), (3, 3, 1.0),
        ]);
        let pair = SpPair::new(std::sync::Arc::new(a));
        grad_check(&p, move |t, x| {
            let y = t.spmm(&pair, x);
            t.sum(y)
        });
    }

    #[test]
    fn grad_activations(p in small_matrix(2, 3)) {
        // Keep away from the ReLU kink where the numeric gradient is undefined.
        let mut shifted = p.clone();
        shifted.map_inplace(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
        grad_check(&shifted, |t, x| {
            let a = t.relu(x);
            let b = t.sigmoid(a);
            let c = t.tanh(b);
            let d = t.elu(c, 1.0);
            let e = t.leaky_relu(d, 0.2);
            t.sum(e)
        });
    }

    #[test]
    fn grad_scalar_mul(p in small_matrix(1, 1)) {
        let x = Matrix::from_fn(2, 2, |i, j| (i + j) as f64 - 1.0);
        grad_check(&p, move |t, s| {
            let xv = t.constant(x.clone());
            let y = t.scalar_mul(s, xv);
            t.sum(y)
        });
    }

    #[test]
    fn grad_scalar_mul_matrix_side(p in small_matrix(2, 2)) {
        grad_check(&p, |t, x| {
            let s = t.constant(Matrix::from_vec(1, 1, vec![1.7]));
            let y = t.scalar_mul(s, x);
            t.sum(y)
        });
    }

    #[test]
    fn grad_add_row_bias(p in small_matrix(1, 3)) {
        let x = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 / 6.0);
        grad_check(&p, move |t, bias| {
            let xv = t.constant(x.clone());
            let y = t.add_row(xv, bias);
            let z = t.sigmoid(y);
            t.sum(z)
        });
    }

    #[test]
    fn grad_gather_rows(p in small_matrix(4, 2)) {
        let idx = Arc::new(vec![2usize, 0, 2]); // duplicate index exercises accumulation
        grad_check(&p, move |t, x| {
            let y = t.gather_rows(x, Arc::clone(&idx));
            let z = t.hadamard(y, y);
            t.sum(z)
        });
    }

    #[test]
    fn grad_replace_rows_token(p in small_matrix(1, 3)) {
        let x = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 / 2.0);
        let idx = Arc::new(vec![1usize, 3]);
        grad_check(&p, move |t, token| {
            let xv = t.constant(x.clone());
            let y = t.replace_rows(xv, token, Arc::clone(&idx));
            let z = t.hadamard(y, y);
            t.sum(z)
        });
    }

    #[test]
    fn grad_replace_rows_carrier(p in small_matrix(4, 3)) {
        let idx = Arc::new(vec![0usize, 2]);
        grad_check(&p, move |t, x| {
            let token = t.constant(Matrix::full(1, 3, 0.5));
            let y = t.replace_rows(x, token, Arc::clone(&idx));
            let z = t.hadamard(y, y);
            t.sum(z)
        });
    }

    #[test]
    fn grad_row_normalize(p in nonzero_rows_matrix(3, 4)) {
        grad_check(&p, |t, x| {
            let y = t.row_normalize(x);
            let c = Matrix::from_fn(3, 4, |i, j| ((i + j) % 3) as f64 - 1.0);
            let cv = t.constant(c);
            let z = t.hadamard(y, cv);
            t.sum(z)
        });
    }

    #[test]
    fn grad_softmax_row(p in small_matrix(2, 4)) {
        let w = Matrix::from_fn(2, 4, |i, j| (i as f64 + 1.0) * (j as f64 - 1.5));
        grad_check(&p, move |t, x| {
            let y = t.softmax_row(x);
            let wv = t.constant(w.clone());
            let z = t.hadamard(y, wv);
            t.sum(z)
        });
    }

    #[test]
    fn grad_entry(p in small_matrix(3, 3)) {
        grad_check(&p, |t, x| {
            let e = t.entry(x, 1, 2);
            let f = t.entry(x, 0, 0);
            let s = t.add(e, f);
            t.hadamard(s, s)
        });
    }

    #[test]
    fn grad_mean_sqsum(p in small_matrix(2, 5)) {
        grad_check(&p, |t, x| {
            let m = t.mean(x);
            let s = t.sq_sum(x);
            let sm = t.scale(s, 0.25);
            t.add(m, sm)
        });
    }

    #[test]
    fn grad_scaled_cosine(p in nonzero_rows_matrix(4, 3)) {
        let target = Arc::new(Matrix::from_fn(4, 3, |i, j| ((i * 2 + j) % 4) as f64 + 0.5));
        let idx = Arc::new(vec![0usize, 1, 3]);
        for eta in [1.0, 2.0, 3.0] {
            grad_check(&p, |t, x| {
                t.scaled_cosine_loss(x, Arc::clone(&target), Arc::clone(&idx), eta)
            });
        }
    }

    #[test]
    fn grad_edge_nce(p in small_matrix(5, 3)) {
        let pos = Arc::new(vec![(0usize, 1usize), (2, 3)]);
        let negs = Arc::new(vec![4usize, 2, 0, 4]); // q = 2 per edge
        grad_check(&p, move |t, z| {
            t.edge_nce_loss(z, Arc::clone(&pos), Arc::clone(&negs), 2)
        });
    }

    #[test]
    fn grad_info_nce(p in small_matrix(4, 3)) {
        let b = Matrix::from_fn(4, 3, |i, j| ((i + j) % 3) as f64 / 2.0 + 0.1);
        let negs = Arc::new(vec![1usize, 2, 0, 3, 0, 1, 2, 0]); // q = 2 per anchor
        grad_check(&p, move |t, a| {
            let bv = t.constant(b.clone());
            t.info_nce_loss(a, bv, Arc::clone(&negs), 2, 0.7)
        });
    }

    #[test]
    fn grad_info_nce_second_view(p in small_matrix(4, 2)) {
        let a = Matrix::from_fn(4, 2, |i, j| (i as f64 - j as f64) / 3.0 + 0.2);
        let negs = Arc::new(vec![3usize, 2, 1, 0]); // q = 1 per anchor
        grad_check(&p, move |t, b| {
            let av = t.constant(a.clone());
            t.info_nce_loss(av, b, Arc::clone(&negs), 1, 1.0)
        });
    }

    #[test]
    fn grad_mse(p in small_matrix(3, 3)) {
        let target = Arc::new(Matrix::from_fn(3, 3, |i, j| (i * j) as f64 / 4.0));
        grad_check(&p, move |t, x| {
            t.mse_loss(x, Arc::clone(&target))
        });
    }

    #[test]
    fn grad_bce_logits(p in small_matrix(2, 4)) {
        let target = Arc::new(Matrix::from_fn(2, 4, |i, j| ((i + j) % 2) as f64));
        for pw in [1.0, 5.0] {
            grad_check(&p, |t, x| {
                t.bce_logits_loss(x, Arc::clone(&target), pw)
            });
        }
    }

    #[test]
    fn grad_deep_composition(p in nonzero_rows_matrix(3, 3)) {
        // A miniature GCN-autoencoder-shaped graph: spmm -> linear -> act ->
        // linear -> cosine loss, with p as the first weight.
        let a = CsrMatrix::from_coo(4, 4, vec![
            (0, 0, 0.5), (0, 1, 0.5), (1, 0, 0.5), (1, 1, 0.5),
            (2, 2, 0.7), (2, 3, 0.3), (3, 2, 0.3), (3, 3, 0.7),
        ]);
        let pair = SpPair::new(std::sync::Arc::new(a));
        let x = Matrix::from_fn(4, 3, |i, j| ((i + j) % 3) as f64 / 2.0 + 0.2);
        let target = Arc::new(x.clone());
        let idx = Arc::new(vec![0usize, 2]);
        grad_check(&p, move |t, w| {
            let xv = t.constant(x.clone());
            let ax = t.spmm(&pair, xv);
            let h = t.matmul(ax, w); // 4x3 @ 3x3
            let h = t.elu(h, 1.0); // smooth activation keeps the check well-posed
            let h2 = t.spmm(&pair, h);
            t.scaled_cosine_loss(h2, Arc::clone(&target), Arc::clone(&idx), 2.0)
        });
    }
}

/// Fixture for the fused `spmm_bias_act` checks: a 4-node sparse adjacency,
/// a 4x3 input, a 3x2 weight, and a 1x2 bias.
fn fused_fixture() -> (SpPair, Matrix, Matrix, Matrix) {
    let a = CsrMatrix::from_coo(
        4,
        4,
        vec![
            (0, 0, 0.5),
            (0, 1, 0.5),
            (1, 0, 0.4),
            (1, 2, 0.6),
            (2, 3, 1.0),
            (3, 2, 0.3),
            (3, 3, 0.7),
        ],
    );
    let pair = SpPair::new(Arc::new(a));
    let x = Matrix::from_fn(4, 3, |i, j| ((i * 3 + j) % 5) as f64 / 2.0 - 0.8);
    let w = Matrix::from_fn(3, 2, |i, j| (i as f64 - j as f64) / 2.0 + 0.3);
    let bias = Matrix::from_vec(1, 2, vec![0.21, -0.37]);
    (pair, x, w, bias)
}

const ALL_FUSED_ACTS: [FusedAct; 5] = [
    FusedAct::None,
    FusedAct::Relu,
    FusedAct::LeakyRelu(0.2),
    FusedAct::Elu(1.0),
    FusedAct::Tanh,
];

/// Analytic-vs-numeric check for the fused kernel's backward, for every
/// activation, with and without an adjacency, for each of the three
/// differentiable inputs. Deterministic values keep the pre-activation away
/// from the ReLU/LeakyReLU kink so the finite-difference check is
/// well-posed.
#[test]
fn grad_fused_spmm_bias_act_all_inputs() {
    let (pair, x, w, bias) = fused_fixture();
    for use_adj in [true, false] {
        // The check perturbs entries by ±1e-5; a pre-activation at least
        // 1e-2 from zero cannot cross the kink.
        let z = umgad_tensor::spmm_bias_act(
            use_adj.then(|| pair.fwd.as_ref()),
            &x,
            &w,
            bias.row(0),
            FusedAct::None,
        );
        assert!(
            z.data().iter().all(|v| v.abs() > 1e-2),
            "fixture pre-activation too close to an activation kink"
        );
        for act in ALL_FUSED_ACTS {
            let adj = use_adj.then_some(&pair);
            // d/dx
            grad_check(&x, |t, xv| {
                let wv = t.constant(w.clone());
                let bv = t.constant(bias.clone());
                let y = t.spmm_bias_act(adj, xv, wv, bv, act);
                t.sum(y)
            });
            // d/dw
            grad_check(&w, |t, wv| {
                let xv = t.constant(x.clone());
                let bv = t.constant(bias.clone());
                let y = t.spmm_bias_act(adj, xv, wv, bv, act);
                t.sum(y)
            });
            // d/dbias
            grad_check(&bias, |t, bv| {
                let xv = t.constant(x.clone());
                let wv = t.constant(w.clone());
                let y = t.spmm_bias_act(adj, xv, wv, bv, act);
                t.sum(y)
            });
        }
    }
}

/// The fused node composes downstream: gradients flow through a further
/// matmul + loss exactly like the unfused chain's would.
#[test]
fn grad_fused_spmm_bias_act_composed() {
    let (pair, x, _, bias) = fused_fixture();
    let w = Matrix::from_fn(3, 3, |i, j| ((i + 2 * j) % 4) as f64 / 3.0 + 0.1);
    let bias3 = Matrix::from_vec(1, 3, vec![0.2, -0.1, 0.15]);
    let _ = bias;
    grad_check(&w, move |t, wv| {
        let xv = t.constant(x.clone());
        let bv = t.constant(bias3.clone());
        let h = t.spmm_bias_act(Some(&pair), xv, wv, bv, FusedAct::Elu(1.0));
        let g = t.matmul_tb(h, h);
        t.mean(g)
    });
}

#[test]
fn dropout_grad_uses_mask() {
    // Dropout is stochastic, so the check fixes the mask by seeding the rng
    // and rebuilding the same graph — instead we verify the identity:
    // grad = mask (for sum loss).
    let mut rng = SmallRng::seed_from_u64(11);
    let mut tape = Tape::new();
    let p = tape.leaf(Matrix::full(4, 4, 1.0));
    let y = tape.dropout(p, 0.5, &mut rng);
    let mask = tape.value(y).clone(); // value = 1 * mask
    let l = tape.sum(y);
    tape.backward(l);
    assert_eq!(tape.grad(p).unwrap().data(), mask.data());
}
