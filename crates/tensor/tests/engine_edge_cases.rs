//! Edge-case and stress tests for the tensor engine beyond the
//! finite-difference suite: optimiser behaviour, parallel map under load,
//! sparse corner cases, and numerical-robustness checks.

use std::sync::Arc;

use umgad_rt::proptest::prelude::*;
use umgad_tensor::{Adam, CsrMatrix, Matrix, Param, Sgd, SpPair, Tape};

#[test]
fn empty_sparse_matrix_spmm_is_zero() {
    let m = CsrMatrix::from_coo(3, 3, vec![]);
    let x = Matrix::full(3, 2, 5.0);
    let y = m.spmm(&x);
    assert_eq!(y.data(), &[0.0; 6]);
    assert_eq!(m.nnz(), 0);
    assert!(m.is_symmetric());
}

#[test]
fn sparse_single_column_matrix() {
    let m = CsrMatrix::from_coo(4, 1, vec![(0, 0, 2.0), (3, 0, -1.0)]);
    let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
    let y = m.spmm(&x);
    assert_eq!(y.row(0), &[2.0, 4.0, 6.0]);
    assert_eq!(y.row(3), &[-1.0, -2.0, -3.0]);
    assert_eq!(y.row(1), &[0.0, 0.0, 0.0]);
}

#[test]
fn sppair_asymmetric_backward_uses_transpose() {
    // y = A x with asymmetric A; check grad_x = A^T g numerically.
    let a = CsrMatrix::from_coo(2, 3, vec![(0, 1, 2.0), (1, 2, 3.0)]);
    let pair = SpPair::new(Arc::new(a.clone()));
    let mut tape = Tape::new();
    let x = tape.leaf(Matrix::from_fn(3, 1, |i, _| i as f64));
    let y = tape.spmm(&pair, x);
    let l = tape.sum(y);
    tape.backward(l);
    let g = tape.grad(x).unwrap();
    // grad = A^T * ones = column sums of A.
    assert_eq!(g.data(), &[0.0, 2.0, 3.0]);
}

#[test]
fn adam_handles_sparse_gradients() {
    // Gradients that are zero in most entries must not corrupt the rest.
    let mut p = Param::new(Matrix::full(1, 4, 1.0));
    let opt = Adam::with_lr(0.1);
    let mut g = Matrix::zeros(1, 4);
    g.set(0, 2, 1.0);
    for _ in 0..10 {
        opt.step(&mut p, &g);
    }
    // Only the updated entry moves (weight decay is 0 by default).
    assert_eq!(p.value.get(0, 0), 1.0);
    assert!(p.value.get(0, 2) < 1.0);
}

#[test]
fn adam_is_scale_adaptive() {
    // Adam normalises by gradient magnitude: two quadratic bowls with very
    // different curvature converge in a comparable number of steps.
    let solve = |curvature: f64| -> usize {
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![4.0]));
        let opt = Adam::with_lr(0.2);
        for step in 0..1000 {
            let x = p.value.get(0, 0);
            if x.abs() < 1e-2 {
                return step;
            }
            let g = Matrix::from_vec(1, 1, vec![2.0 * curvature * x]);
            opt.step(&mut p, &g);
        }
        1000
    };
    let fast = solve(1.0);
    let slow = solve(1e4);
    assert!(slow < fast * 3, "adaptive steps: {fast} vs {slow}");
}

#[test]
fn sgd_weight_decay_alone_decays_exponentially() {
    let mut p = Param::new(Matrix::from_vec(1, 1, vec![1.0]));
    let opt = Sgd {
        lr: 0.1,
        weight_decay: 1.0,
    };
    let zero = Matrix::zeros(1, 1);
    for _ in 0..20 {
        opt.step(&mut p, &zero);
    }
    let expect = 0.9f64.powi(20);
    assert!((p.value.get(0, 0) - expect).abs() < 1e-12);
}

#[test]
fn parallel_map_heavy_load_and_unbalanced_work() {
    // Items with wildly different costs still produce ordered results.
    let items: Vec<usize> = (0..200).collect();
    let out = umgad_tensor::parallel_map(items, 8, |i| {
        let mut acc = 0u64;
        for k in 0..(i % 13) * 1000 {
            acc = acc.wrapping_add(k as u64).rotate_left(1);
        }
        (i, acc)
    });
    for (idx, (i, _)) in out.iter().enumerate() {
        assert_eq!(idx, *i);
    }
}

#[test]
fn tape_handles_long_chains() {
    // 500 chained ops: no recursion, no quadratic blowup in backward.
    let mut tape = Tape::new();
    let x = tape.leaf(Matrix::full(4, 4, 1.0));
    let mut h = x;
    for i in 0..500 {
        h = if i % 2 == 0 {
            tape.scale(h, 1.001)
        } else {
            tape.tanh(h)
        };
    }
    let l = tape.mean(h);
    tape.backward(l);
    assert!(tape.grad(x).unwrap().is_finite());
}

#[test]
fn losses_are_finite_on_extreme_inputs() {
    let mut tape = Tape::new();
    let big = tape.leaf(Matrix::full(4, 3, 1e6));
    let target = Arc::new(Matrix::full(4, 3, -1e6));
    let l1 = tape.mse_loss(big, Arc::clone(&target));
    assert!(tape.value(l1).get(0, 0).is_finite());
    let l2 = tape.bce_logits_loss(big, Arc::new(Matrix::zeros(4, 3)), 1.0);
    assert!(
        tape.value(l2).get(0, 0).is_finite(),
        "stable BCE must not overflow"
    );
    let idx = Arc::new(vec![0usize, 1]);
    let l3 = tape.scaled_cosine_loss(big, Arc::new(Matrix::full(4, 3, 1.0)), idx, 3.0);
    assert!(tape.value(l3).get(0, 0).is_finite());
    tape.backward(l2);
    assert!(tape.grad(big).unwrap().is_finite());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn csr_transpose_involution(entries in umgad_rt::proptest::collection::vec((0usize..6, 0usize..6, -3.0f64..3.0), 0..20)) {
        let m = CsrMatrix::from_coo(6, 6, entries);
        let tt = m.transpose().transpose();
        let a = tt.to_dense();
        let b = m.to_dense();
        prop_assert_eq!(a.data(), b.data());
    }

    #[test]
    fn spmm_matches_dense_reference(entries in umgad_rt::proptest::collection::vec((0usize..5, 0usize..7, -2.0f64..2.0), 0..25)) {
        let m = CsrMatrix::from_coo(5, 7, entries);
        let x = Matrix::from_fn(7, 3, |i, j| (i as f64 - j as f64) / 3.0);
        let sparse = m.spmm(&x);
        let dense = m.to_dense().matmul(&x);
        for (a, b) in sparse.data().iter().zip(dense.data()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_associativity(a in umgad_rt::proptest::collection::vec(-2.0f64..2.0, 6), b in umgad_rt::proptest::collection::vec(-2.0f64..2.0, 6), c in umgad_rt::proptest::collection::vec(-2.0f64..2.0, 4))
    {
        let ma = Matrix::from_vec(2, 3, a);
        let mb = Matrix::from_vec(3, 2, b);
        let mc = Matrix::from_vec(2, 2, c);
        let left = ma.matmul(&mb).matmul(&mc);
        let right = ma.matmul(&mb.matmul(&mc));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn softmax_row_shift_invariance(v in umgad_rt::proptest::collection::vec(-4.0f64..4.0, 5), shift in -10.0f64..10.0) {
        let mut t = Tape::new();
        let a = t.constant(Matrix::from_vec(1, 5, v.clone()));
        let s1 = t.softmax_row(a);
        let shifted = t.constant(Matrix::from_vec(1, 5, v.iter().map(|x| x + shift).collect()));
        let s2 = t.softmax_row(shifted);
        for (x, y) in t.value(s1).data().iter().zip(t.value(s2).data()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }
}
