//! Bit-determinism of the parallel kernel layer: for random shapes and
//! every tested thread count, the pool-dispatched kernels must equal the
//! serial kernels *bitwise*. The parallel code partitions output rows, so
//! each `f64` accumulates in the same order as the serial loops — scores
//! stay a pure function of `(graph, config, seed)` at any `UMGAD_THREADS`.

use umgad_rt::proptest::prelude::*;
use umgad_rt::rand::rngs::SmallRng;
use umgad_rt::rand::{Rng, SeedableRng};
use umgad_tensor::{parallel_map, CsrMatrix, Matrix};

/// Thread counts the kernels must be invariant under: serial degenerate,
/// even, odd (uneven partitions), and more lanes than most test shapes
/// have rows.
const THREAD_COUNTS: [usize; 4] = [1, 2, 5, 8];

/// A dense matrix with exact zeros mixed in, so the kernels' zero-skip
/// branches see traffic, and both signs represented.
fn dense(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen::<f64>() < 0.2 {
            0.0
        } else {
            rng.gen::<f64>() * 4.0 - 2.0
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_parallel_is_bitwise_serial(
        (m, k, n, seed) in (0usize..24, 0usize..24, 0usize..24, 0u64..1_000_000)
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = dense(m, k, &mut rng);
        let b = dense(k, n, &mut rng);
        let serial = a.matmul_serial(&b);
        for threads in THREAD_COUNTS {
            let par = a.matmul_parallel(&b, threads);
            prop_assert_eq!(par.data(), serial.data(), "threads={}", threads);
        }
        // The dispatching entry point picks one of the two proven paths.
        let dispatched = a.matmul(&b);
        prop_assert_eq!(dispatched.data(), serial.data());
    }

    #[test]
    fn matmul_ta_parallel_is_bitwise_serial(
        (m, k, n, seed) in (0usize..24, 0usize..24, 0usize..24, 0u64..1_000_000)
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = dense(m, k, &mut rng);
        let b = dense(m, n, &mut rng);
        let serial = a.matmul_ta_serial(&b);
        for threads in THREAD_COUNTS {
            let par = a.matmul_ta_parallel(&b, threads);
            prop_assert_eq!(par.data(), serial.data(), "threads={}", threads);
        }
        let dispatched = a.matmul_ta(&b);
        prop_assert_eq!(dispatched.data(), serial.data());
    }

    #[test]
    fn matmul_tb_parallel_is_bitwise_serial(
        (m, k, n, seed) in (0usize..24, 0usize..24, 0usize..24, 0u64..1_000_000)
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = dense(m, k, &mut rng);
        let b = dense(n, k, &mut rng);
        let serial = a.matmul_tb_serial(&b);
        for threads in THREAD_COUNTS {
            let par = a.matmul_tb_parallel(&b, threads);
            prop_assert_eq!(par.data(), serial.data(), "threads={}", threads);
        }
        let dispatched = a.matmul_tb(&b);
        prop_assert_eq!(dispatched.data(), serial.data());
    }

    #[test]
    fn spmm_parallel_is_bitwise_serial(
        (rows, cols, n, seed) in (1usize..48, 1usize..32, 0usize..8, 0u64..1_000_000)
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Skewed sparsity: a few hub rows plus a uniform tail, so the
        // nnz-balanced partitions get genuinely uneven row spans.
        let nnz = rng.gen_range(0..rows * 4);
        let triples: Vec<(usize, usize, f64)> = (0..nnz)
            .map(|_| {
                let r = if rng.gen::<f64>() < 0.3 {
                    rng.gen_range(0..rows.div_ceil(8))
                } else {
                    rng.gen_range(0..rows)
                };
                (r, rng.gen_range(0..cols), rng.gen::<f64>() * 2.0 - 1.0)
            })
            .collect();
        let a = CsrMatrix::from_coo(rows, cols, triples);
        let x = dense(cols, n, &mut rng);
        let serial = a.spmm_serial(&x);
        for threads in THREAD_COUNTS {
            let par = a.spmm_parallel(&x, threads);
            prop_assert_eq!(par.data(), serial.data(), "threads={}", threads);
        }
        let dispatched = a.spmm(&x);
        prop_assert_eq!(dispatched.data(), serial.data());
    }

    #[test]
    fn parallel_map_is_order_and_value_identical(
        (len, seed) in (0usize..64, 0u64..1_000_000)
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let items: Vec<f64> = (0..len).map(|_| rng.gen::<f64>() * 10.0).collect();
        let f = |x: f64| (x.sin() * 1e6).mul_add(x, 1.0 / (x + 0.5));
        let serial: Vec<f64> = items.iter().map(|&x| f(x)).collect();
        for threads in THREAD_COUNTS {
            let par = parallel_map(items.clone(), threads, f);
            prop_assert_eq!(&par, &serial, "threads={}", threads);
        }
    }
}
