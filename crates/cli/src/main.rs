//! `umgad` — multiplex graph anomaly detection from the command line.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match umgad_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let umgad_cli::Command::Detect {
        supervise: Some(max),
        ..
    } = &cmd
    {
        return match umgad_cli::run_supervised(&args, *max) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match umgad_cli::run(cmd) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
