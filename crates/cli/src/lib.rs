//! # umgad-cli
//!
//! Library backing the `umgad` command-line tool: argument parsing and the
//! generate / detect / baseline / threshold subcommands, factored out of
//! `main` so they are unit-testable.
//!
//! ```text
//! umgad generate --dataset retail --scale 0.05 --seed 7 --out graph.json
//! umgad detect   --input graph.json --epochs 20 --scores scores.csv
//! umgad baseline --input graph.json --method dominant --scores scores.csv
//! umgad threshold --scores scores.csv
//! ```

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;

use umgad_baselines::{registry, BaselineConfig, Detector};
use umgad_core::ops::{CheckpointSink, Lineage, StopConditions, DEFAULT_KEEP};
use umgad_core::{
    roc_auc, select_threshold, ModelRegistry, ParkedModel, ScoreRequest, ScoreResponse,
    ScoreService, ServiceLimits, Umgad, UmgadConfig,
};
use umgad_data::{load_graph, save_graph, Dataset, DatasetKind, Scale};
use umgad_graph::MultiplexGraph;
use umgad_rt::retry::{io_retry, RetryPolicy};

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Generate a dataset twin and write it as JSON.
    Generate {
        /// Which dataset family.
        dataset: DatasetKind,
        /// Shrink factor in (0, 1].
        scale: f64,
        /// RNG seed.
        seed: u64,
        /// Output JSON path.
        out: PathBuf,
    },
    /// Train UMGAD on a JSON graph and emit per-node scores.
    Detect {
        /// Input JSON graph.
        input: PathBuf,
        /// Training epochs (`None` = preset default; on `--resume` it
        /// extends the checkpoint's target).
        epochs: Option<usize>,
        /// RNG seed.
        seed: u64,
        /// Use the real-anomaly (2-hop) preset instead of the injected one.
        real_preset: bool,
        /// Where to write the score CSV (stdout when absent).
        scores: Option<PathBuf>,
        /// Save the trained model as a JSON checkpoint.
        save_model: Option<PathBuf>,
        /// Write a full-state training checkpoint here (crash-safe).
        checkpoint: Option<PathBuf>,
        /// Checkpoint every N epochs (0 = only at the end of training).
        checkpoint_every: usize,
        /// Resume from a full-state checkpoint instead of starting fresh.
        resume: Option<PathBuf>,
        /// Maintain a rotating checkpoint lineage (keep-last-N + manifest)
        /// in this directory; auto-resumes from the newest valid entry.
        checkpoint_dir: Option<PathBuf>,
        /// Rotation depth for `--checkpoint-dir`.
        keep: usize,
        /// Stop gracefully (checkpoint + exit 0) when this file appears.
        stop_file: Option<PathBuf>,
        /// Stop gracefully after this many seconds of wall clock.
        deadline_secs: Option<u64>,
        /// Supervise the run: re-exec the training child on crash, up to
        /// this many restarts, resuming from the lineage each time.
        supervise: Option<u32>,
        /// Write a telemetry + per-epoch metrics JSON report here (implies
        /// enabling telemetry for the run).
        metrics: Option<PathBuf>,
    },
    /// Validate checkpoint integrity offline (file or lineage directory).
    Fsck {
        /// A checkpoint file or a `--checkpoint-dir` lineage directory.
        target: PathBuf,
    },
    /// Score a graph with a previously saved model (no training). The model
    /// is parked once (forward passes + scoring invariants frozen) and every
    /// request is served from the cache.
    Score {
        /// Input JSON graph.
        input: PathBuf,
        /// Model checkpoint (`detect --save-model`), full training
        /// checkpoint, or a `--checkpoint-dir` lineage directory (newest
        /// valid entry wins).
        model: PathBuf,
        /// Where to write the score CSV (stdout when absent).
        scores: Option<PathBuf>,
        /// Score only the node ids listed in this file (one per line,
        /// `#` comments allowed).
        nodes: Option<PathBuf>,
        /// Score every node (the default; spelled out for scripts).
        all: bool,
        /// Split the node set into batched requests of this many nodes.
        batch: Option<usize>,
        /// Print per-view attribute/structure z-explanations per node.
        explain: bool,
        /// Write a telemetry metrics JSON report here (`serve.*` spans,
        /// `rss_peak`; implies enabling telemetry for the run).
        metrics: Option<PathBuf>,
    },
    /// Long-lived scoring daemon: park one or more models and answer
    /// line-delimited JSON [`ScoreRequest`]s over a Unix domain socket or
    /// stdin/stdout, through the same [`ScoreService`] the `score`
    /// subcommand uses in-process.
    Serve {
        /// Input JSON graph every model is parked against.
        input: PathBuf,
        /// Model sources (repeatable): checkpoint file, lineage directory
        /// (newest valid entry), or a directory of checkpoint files (all
        /// parked). The first loaded model is the default.
        models: Vec<PathBuf>,
        /// Listen on a Unix domain socket at this path.
        socket: Option<PathBuf>,
        /// Serve a single connection on stdin/stdout instead (frames on
        /// stdout; status lines go to stderr).
        stdio: bool,
        /// Reject requests past this many in flight (0 = unlimited).
        max_inflight: usize,
        /// Reject requests asking for more nodes than this (0 = unlimited).
        max_nodes: usize,
        /// Write a telemetry metrics JSON report here at shutdown (implies
        /// enabling telemetry for the run).
        metrics: Option<PathBuf>,
        /// Shut down gracefully when this file appears (socket mode).
        stop_file: Option<PathBuf>,
        /// Shut down gracefully after this many seconds (socket mode).
        deadline_secs: Option<u64>,
    },
    /// Run one named baseline instead of UMGAD.
    Baseline {
        /// Input JSON graph.
        input: PathBuf,
        /// Baseline name (case-insensitive, as in Table II).
        method: String,
        /// Training epochs.
        epochs: usize,
        /// RNG seed.
        seed: u64,
        /// Where to write the score CSV (stdout when absent).
        scores: Option<PathBuf>,
    },
    /// Convert plain-text edge/attribute/label files to a JSON graph.
    Import {
        /// Attribute table (one node per row).
        attrs: PathBuf,
        /// `name=path` relation edge files, in order.
        relations: Vec<(String, PathBuf)>,
        /// Optional label file.
        labels: Option<PathBuf>,
        /// Output JSON path.
        out: PathBuf,
    },
    /// Apply the unsupervised threshold strategy to a score CSV.
    Threshold {
        /// Input CSV (`node,score` with header).
        scores: PathBuf,
    },
    /// List available baseline names.
    Methods,
}

/// Top-level usage string.
pub fn usage() -> &'static str {
    "usage: umgad <generate|detect|fsck|score|serve|baseline|import|threshold|methods> [flags]\n\
     generate  --dataset retail|alibaba|amazon|yelpchi [--scale F] [--seed N] --out FILE\n\
     detect    --input FILE [--epochs N] [--seed N] [--real] [--scores FILE] [--save-model FILE]\n\
    \u{20}          [--checkpoint FILE [--checkpoint-every N]] [--resume FILE] [--metrics FILE]\n\
    \u{20}          [--checkpoint-dir DIR [--keep N] [--supervise N]]\n\
    \u{20}          [--stop-file FILE] [--deadline-secs N]\n\
     fsck      FILE|DIR\n\
     score     --input FILE --model FILE|DIR [--nodes FILE | --all] [--batch N] [--explain]\n\
    \u{20}          [--scores FILE] [--metrics FILE]\n\
     serve     --input FILE --model FILE|DIR [--model ...] (--socket PATH | --stdio)\n\
    \u{20}          [--max-inflight N] [--max-nodes N] [--metrics FILE]\n\
    \u{20}          [--stop-file FILE] [--deadline-secs N]\n\
     baseline  --input FILE --method NAME [--epochs N] [--seed N] [--scores FILE]\n\
     threshold --scores FILE\n\
     import    --attrs FILE --relation NAME=FILE [--relation ...] [--labels FILE] --out FILE\n\
     methods"
}

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = it.next().ok_or_else(|| usage().to_string())?;
    if sub == "fsck" {
        // The one positional subcommand: `umgad fsck FILE|DIR`.
        let target = it.next().ok_or("fsck needs a FILE or DIR argument")?;
        if it.next().is_some() {
            return Err("fsck takes exactly one argument".into());
        }
        return Ok(Command::Fsck {
            target: target.into(),
        });
    }
    let mut flags = std::collections::HashMap::new();
    let mut bools = std::collections::HashSet::new();
    let mut relations: Vec<(String, PathBuf)> = Vec::new();
    let mut models: Vec<PathBuf> = Vec::new();
    while let Some(flag) = it.next() {
        if flag == "--real" {
            bools.insert("real");
            continue;
        }
        if flag == "--all" {
            bools.insert("all");
            continue;
        }
        if flag == "--explain" {
            bools.insert("explain");
            continue;
        }
        if flag == "--stdio" {
            bools.insert("stdio");
            continue;
        }
        if flag == "--model" {
            // Repeatable: `serve` parks every named model; `score` takes
            // exactly one.
            let v = it.next().ok_or("--model needs a value")?;
            models.push(PathBuf::from(v));
            continue;
        }
        if flag == "--relation" {
            let v = it.next().ok_or("--relation needs NAME=FILE")?;
            let (name, path) = v
                .split_once('=')
                .ok_or_else(|| format!("--relation expects NAME=FILE, got {v}"))?;
            relations.push((name.to_string(), path.into()));
            continue;
        }
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected flag, got {flag}"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    let get = |k: &str| flags.get(k).cloned();
    let num = |k: &str, d: u64| -> Result<u64, String> {
        get(k).map_or(Ok(d), |v| v.parse().map_err(|e| format!("--{k}: {e}")))
    };
    match sub.as_str() {
        "generate" => {
            let dataset = match get("dataset")
                .ok_or("--dataset required")?
                .to_lowercase()
                .as_str()
            {
                "retail" => DatasetKind::Retail,
                "alibaba" => DatasetKind::Alibaba,
                "amazon" => DatasetKind::Amazon,
                "yelpchi" => DatasetKind::YelpChi,
                other => return Err(format!("unknown dataset {other}")),
            };
            let scale = get("scale").map_or(Ok(1.0 / 16.0), |v| {
                v.parse::<f64>().map_err(|e| format!("--scale: {e}"))
            })?;
            Ok(Command::Generate {
                dataset,
                scale,
                seed: num("seed", 7)?,
                out: get("out").ok_or("--out required")?.into(),
            })
        }
        "detect" => {
            let checkpoint: Option<PathBuf> = get("checkpoint").map(Into::into);
            let checkpoint_dir: Option<PathBuf> = get("checkpoint-dir").map(Into::into);
            let checkpoint_every = num("checkpoint-every", 0)? as usize;
            let resume: Option<PathBuf> = get("resume").map(Into::into);
            if checkpoint_every > 0 && checkpoint.is_none() && checkpoint_dir.is_none() {
                return Err(
                    "--checkpoint-every needs --checkpoint FILE or --checkpoint-dir DIR".into(),
                );
            }
            if checkpoint.is_some() && checkpoint_dir.is_some() {
                return Err("--checkpoint and --checkpoint-dir are mutually exclusive".into());
            }
            if resume.is_some() && checkpoint_dir.is_some() {
                return Err("--checkpoint-dir auto-resumes; drop --resume".into());
            }
            if flags.contains_key("keep") && checkpoint_dir.is_none() {
                return Err("--keep needs --checkpoint-dir DIR".into());
            }
            let keep = num("keep", DEFAULT_KEEP as u64)? as usize;
            if keep == 0 {
                return Err("--keep must be at least 1".into());
            }
            let supervise = get("supervise")
                .map(|v| v.parse::<u32>().map_err(|e| format!("--supervise: {e}")))
                .transpose()?;
            if supervise.is_some() && checkpoint_dir.is_none() {
                return Err("--supervise needs --checkpoint-dir DIR to resume from".into());
            }
            Ok(Command::Detect {
                input: get("input").ok_or("--input required")?.into(),
                epochs: get("epochs")
                    .map(|v| v.parse().map_err(|e| format!("--epochs: {e}")))
                    .transpose()?,
                seed: num("seed", 7)?,
                real_preset: bools.contains("real"),
                scores: get("scores").map(Into::into),
                save_model: get("save-model").map(Into::into),
                checkpoint,
                checkpoint_every,
                resume,
                checkpoint_dir,
                keep,
                stop_file: get("stop-file").map(Into::into),
                deadline_secs: get("deadline-secs")
                    .map(|v| {
                        v.parse::<u64>()
                            .map_err(|e| format!("--deadline-secs: {e}"))
                    })
                    .transpose()?,
                supervise,
                metrics: get("metrics").map(Into::into),
            })
        }
        "score" => {
            let nodes: Option<PathBuf> = get("nodes").map(Into::into);
            let all = bools.contains("all");
            if all && nodes.is_some() {
                return Err("--nodes and --all are mutually exclusive".into());
            }
            let batch = get("batch")
                .map(|v| v.parse::<usize>().map_err(|e| format!("--batch: {e}")))
                .transpose()?;
            if batch == Some(0) {
                return Err("--batch must be at least 1".into());
            }
            if models.len() > 1 {
                return Err("score takes exactly one --model (serve parks several)".into());
            }
            Ok(Command::Score {
                input: get("input").ok_or("--input required")?.into(),
                model: models.pop().ok_or("--model required")?,
                scores: get("scores").map(Into::into),
                nodes,
                all,
                batch,
                explain: bools.contains("explain"),
                metrics: get("metrics").map(Into::into),
            })
        }
        "serve" => {
            if models.is_empty() {
                return Err("serve needs at least one --model FILE|DIR".into());
            }
            let socket: Option<PathBuf> = get("socket").map(Into::into);
            let stdio = bools.contains("stdio");
            if socket.is_some() == stdio {
                return Err("serve needs exactly one of --socket PATH or --stdio".into());
            }
            Ok(Command::Serve {
                input: get("input").ok_or("--input required")?.into(),
                models,
                socket,
                stdio,
                max_inflight: num("max-inflight", 0)? as usize,
                max_nodes: num("max-nodes", 0)? as usize,
                metrics: get("metrics").map(Into::into),
                stop_file: get("stop-file").map(Into::into),
                deadline_secs: get("deadline-secs")
                    .map(|v| {
                        v.parse::<u64>()
                            .map_err(|e| format!("--deadline-secs: {e}"))
                    })
                    .transpose()?,
            })
        }
        "baseline" => Ok(Command::Baseline {
            input: get("input").ok_or("--input required")?.into(),
            method: get("method").ok_or("--method required")?,
            epochs: num("epochs", 20)? as usize,
            seed: num("seed", 7)?,
            scores: get("scores").map(Into::into),
        }),
        "threshold" => Ok(Command::Threshold {
            scores: get("scores").ok_or("--scores required")?.into(),
        }),
        "import" => {
            if relations.is_empty() {
                return Err("import needs at least one --relation NAME=FILE".into());
            }
            Ok(Command::Import {
                attrs: get("attrs").ok_or("--attrs required")?.into(),
                relations,
                labels: get("labels").map(Into::into),
                out: get("out").ok_or("--out required")?.into(),
            })
        }
        "methods" => Ok(Command::Methods),
        other => Err(format!("unknown subcommand {other}\n{}", usage())),
    }
}

/// Render per-node scores as CSV.
pub fn scores_csv(scores: &[f64]) -> String {
    let mut out = String::from("node,score\n");
    for (i, s) in scores.iter().enumerate() {
        let _ = writeln!(out, "{i},{s:.6}");
    }
    out
}

/// Parse a score CSV produced by [`scores_csv`] (or any `node,score` file).
pub fn parse_scores_csv(text: &str) -> Result<Vec<f64>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if lineno == 0 && line.to_lowercase().contains("score") {
            continue; // header
        }
        if line.trim().is_empty() {
            continue;
        }
        let score = line
            .rsplit(',')
            .next()
            .ok_or_else(|| format!("line {}: empty", lineno + 1))?
            .trim()
            .parse::<f64>()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        out.push(score);
    }
    if out.is_empty() {
        return Err("no scores found".into());
    }
    Ok(out)
}

/// Parse a node-list file (`score --nodes`): one node id per line, blank
/// lines and `#` comments skipped; every id must be within the graph.
pub fn parse_node_list(text: &str, num_nodes: usize) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let id: usize = t
            .parse()
            .map_err(|e| format!("nodes line {}: {e}", lineno + 1))?;
        if id >= num_nodes {
            return Err(format!(
                "nodes line {}: node {id} out of range (graph has {num_nodes} nodes)",
                lineno + 1
            ));
        }
        out.push(id);
    }
    if out.is_empty() {
        return Err("no node ids found".into());
    }
    Ok(out)
}

/// Render a scored node subset as CSV, keyed by the original node ids.
pub fn subset_scores_csv(nodes: &[usize], scores: &[f64]) -> String {
    let mut out = String::from("node,score\n");
    for (i, s) in nodes.iter().zip(scores) {
        let _ = writeln!(out, "{i},{s:.6}");
    }
    out
}

/// Build a baseline by (case-insensitive) Table II name.
pub fn baseline_by_name(name: &str, cfg: BaselineConfig) -> Option<Box<dyn Detector>> {
    registry(cfg)
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
}

/// All baseline names.
pub fn method_names() -> Vec<&'static str> {
    registry(BaselineConfig::default())
        .iter()
        .map(|d| d.name())
        .collect()
}

/// Run a parsed command; returns what should be printed to stdout.
pub fn run(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Generate {
            dataset,
            scale,
            seed,
            out,
        } => {
            let data = Dataset::generate(dataset, Scale::Custom(scale), seed);
            save_graph(&data.graph, &out).map_err(|e| e.to_string())?;
            Ok(format!(
                "wrote {} ({} nodes, {} relations, {} anomalies)\n",
                out.display(),
                data.graph.num_nodes(),
                data.graph.num_relations(),
                data.graph.num_anomalies()
            ))
        }
        Command::Detect {
            input,
            epochs,
            seed,
            real_preset,
            scores,
            save_model,
            checkpoint,
            checkpoint_every,
            resume,
            checkpoint_dir,
            keep,
            stop_file,
            deadline_secs,
            supervise: _, // handled by `run_supervised` before this point
            metrics,
        } => {
            if metrics.is_some() {
                // Enable before any instrumented work so kernel spans from
                // training and scoring are all captured.
                umgad_rt::telemetry::set_enabled(true);
            }
            let graph = load_graph(&input).map_err(|e| e.to_string())?;
            let mut extra = String::new();
            let mut lineage = match &checkpoint_dir {
                Some(d) => Some(Lineage::open(d, keep).map_err(|e| e.to_string())?),
                None => None,
            };
            // Resuming: `--checkpoint-dir` rolls back to the newest valid
            // lineage entry; `--resume FILE` loads one explicit checkpoint.
            // Either way the checkpoint carries its own config (seed,
            // preset, epoch target); `--epochs` may extend the target.
            let resumed = match (&lineage, &resume) {
                (Some(lin), _) => {
                    let (found, skips) = lin.resume_newest_valid(&graph);
                    for s in &skips {
                        let _ = writeln!(extra, "skipped corrupt checkpoint: {s}");
                    }
                    found.map(|(m, entry)| (m, entry.file))
                }
                (None, Some(r)) => Some((
                    Umgad::resume_from_file(r, &graph).map_err(|e| e.to_string())?,
                    r.display().to_string(),
                )),
                (None, None) => None,
            };
            let mut model = match resumed {
                Some((mut m, from)) => {
                    if let Some(e) = epochs {
                        m.set_epochs(e)?;
                    }
                    let _ = writeln!(
                        extra,
                        "resumed {from} at epoch {}/{}",
                        m.history.len(),
                        m.config().epochs
                    );
                    m
                }
                None => {
                    let mut cfg = if real_preset {
                        UmgadConfig::paper_real()
                    } else {
                        UmgadConfig::paper_injected()
                    };
                    cfg.epochs = epochs.unwrap_or(20);
                    cfg.seed = seed;
                    Umgad::new(&graph, cfg)
                }
            };
            let stops = StopConditions {
                stop_file: stop_file.clone(),
                deadline: deadline_secs
                    .map(|s| std::time::Instant::now() + std::time::Duration::from_secs(s)),
            };
            // Scoped so the sink's borrow of the lineage ends before the
            // lineage is read back for the status line.
            let outcome = {
                let mut sink = match (&checkpoint, &mut lineage) {
                    (Some(p), _) => CheckpointSink::File {
                        path: p,
                        every: checkpoint_every,
                    },
                    (None, Some(lin)) => CheckpointSink::Lineage {
                        lineage: lin,
                        every: checkpoint_every,
                    },
                    (None, None) => CheckpointSink::None,
                };
                model
                    .train_run(&graph, &mut sink, &stops)
                    .map_err(|e| e.to_string())?
            };
            if let Some(p) = &checkpoint {
                let _ = writeln!(extra, "checkpointed to {}", p.display());
            }
            if let Some(lin) = &lineage {
                if let Some(newest) = lin.newest() {
                    let _ = writeln!(
                        extra,
                        "lineage {} at epoch {} (keep {})",
                        lin.dir().display(),
                        newest.epoch,
                        lin.keep()
                    );
                }
            }
            if outcome.reason.resumable() {
                // Graceful stop: state is checkpointed and the exit is
                // clean (a supervisor must not treat this as a crash).
                let _ = writeln!(
                    extra,
                    "stopped ({}) at epoch {}/{}; rerun with the same flags to resume",
                    outcome.reason,
                    model.history.len(),
                    model.config().epochs
                );
                return Ok(extra);
            }
            if let Some(p) = save_model {
                model.save(&p).map_err(|e| e.to_string())?;
                let _ = writeln!(extra, "saved model to {}", p.display());
            }
            let s = model.anomaly_scores(&graph);
            if let Some(p) = &metrics {
                write_metrics_report(&model, p)?;
                let _ = writeln!(extra, "wrote metrics to {}", p.display());
            }
            finish_scores(&graph, &s, scores).map(|out| extra + &out)
        }
        Command::Fsck { target } => {
            let report = umgad_core::ops::fsck(&target).map_err(|e| e.to_string())?;
            let rendered = report.render();
            if report.clean() {
                Ok(rendered)
            } else {
                Err(rendered)
            }
        }
        Command::Score {
            input,
            model,
            scores,
            nodes,
            all: _,
            batch,
            explain,
            metrics,
        } => {
            if metrics.is_some() {
                umgad_rt::telemetry::set_enabled(true);
            }
            let graph = load_graph(&input).map_err(|e| e.to_string())?;
            // One-shot scoring is a thin in-process client of the same
            // service the `serve` daemon exposes: park the model in a
            // registry and go through `ScoreService`, so the two paths
            // cannot drift.
            let parked = ParkedModel::load(&model, graph)?;
            let mut registry = ModelRegistry::new();
            registry.insert(model.display().to_string(), parked);
            let svc = ScoreService::new(registry, ServiceLimits::default());
            let num_nodes = svc
                .registry()
                .parked(None)
                .map_err(|e| e.to_string())?
                .num_nodes();
            let node_set: Option<Vec<usize>> = match &nodes {
                Some(p) => {
                    let text = std::fs::read_to_string(p).map_err(|e| e.to_string())?;
                    Some(parse_node_list(&text, num_nodes)?)
                }
                None => None,
            };
            let targets: Vec<usize> = node_set.clone().unwrap_or_else(|| (0..num_nodes).collect());
            let s: Vec<f64> = svc
                .score_batched(None, &targets, batch)
                .map_err(|e| e.to_string())?;
            let mut extra = String::new();
            if explain {
                for (&i, sc) in targets.iter().zip(&s) {
                    let mut line = format!("# node {i} score {sc:.6}:");
                    let resp = svc.handle(&ScoreRequest::Explain {
                        model: None,
                        node: i,
                    });
                    match resp {
                        ScoreResponse::Explanation { views, .. } => {
                            for e in views {
                                let _ = write!(
                                    line,
                                    " {} attr_z={:.4} struct_z={:.4}",
                                    e.view, e.attribute_z, e.structure_z
                                );
                            }
                        }
                        ScoreResponse::Error(e) => return Err(e.to_string()),
                        other => return Err(format!("unexpected explain response: {other:?}")),
                    }
                    let _ = writeln!(extra, "{line}");
                }
            }
            let parked = svc.registry().parked(None).map_err(|e| e.to_string())?;
            if let Some(p) = &metrics {
                write_metrics_report(parked.model(), p)?;
                let _ = writeln!(extra, "wrote metrics to {}", p.display());
            }
            match node_set {
                // Full graph in node order: same CSV + AUC summary as before.
                None => finish_scores(parked.graph(), &s, scores).map(|out| extra + &out),
                // Subset: CSV keyed by the original node ids, no AUC (the
                // labels cover the whole graph, not the request).
                Some(ids) => {
                    let csv = subset_scores_csv(&ids, &s);
                    match scores {
                        Some(p) => {
                            io_retry("score write", RetryPolicy::default(), || {
                                umgad_rt::fs::atomic_write_string(&p, &csv)
                            })
                            .map_err(|e| e.to_string())?;
                            let _ = writeln!(extra, "wrote {}", p.display());
                            Ok(extra)
                        }
                        None => Ok(extra + &csv),
                    }
                }
            }
        }
        Command::Serve {
            input,
            models,
            socket,
            stdio,
            max_inflight,
            max_nodes,
            metrics,
            stop_file,
            deadline_secs,
        } => {
            if metrics.is_some() {
                umgad_rt::telemetry::set_enabled(true);
            }
            let graph = load_graph(&input).map_err(|e| e.to_string())?;
            let mut registry = ModelRegistry::new();
            for m in &models {
                registry.load(m, &graph)?;
            }
            let svc = std::sync::Arc::new(ScoreService::new(
                registry,
                ServiceLimits {
                    max_inflight,
                    max_nodes,
                },
            ));
            // Banner on stderr before serving: stdout stays clean for
            // stdio-mode frames, and socket clients can key readiness off
            // the socket file itself.
            for info in svc.registry().infos() {
                eprintln!(
                    "serving model {} ({} nodes, {} views, from {})",
                    info.digest,
                    info.nodes,
                    info.views.len(),
                    info.source
                );
            }
            let mut extra = String::new();
            if stdio {
                // Single-connection pipe mode: frames on stdout, so the
                // summary goes to stderr and run() returns nothing.
                let served = {
                    let svc = svc.clone();
                    umgad_rt::net::serve_stdio(&move |frame| svc.handle_frame(frame))
                        .map_err(|e| e.to_string())?
                };
                eprintln!("served {served} request(s) on stdio");
            } else {
                let sock = socket.expect("parse enforces --socket in non-stdio mode");
                let stops = StopConditions {
                    stop_file,
                    deadline: deadline_secs
                        .map(|s| std::time::Instant::now() + std::time::Duration::from_secs(s)),
                };
                eprintln!("listening on {}", sock.display());
                let handler: umgad_rt::net::Handler = {
                    let svc = svc.clone();
                    std::sync::Arc::new(move |frame: &str| svc.handle_frame(frame))
                };
                let stats = umgad_rt::net::serve_unix(&sock, handler, &|| stops.check().is_some())
                    .map_err(|e| e.to_string())?;
                let _ = writeln!(
                    extra,
                    "served {} connection(s), {} request(s), {} dropped",
                    stats.connections, stats.frames, stats.dropped
                );
            }
            if let Some(p) = &metrics {
                let parked = svc.registry().parked(None).map_err(|e| e.to_string())?;
                write_metrics_report(parked.model(), p)?;
                let _ = writeln!(extra, "wrote metrics to {}", p.display());
            }
            Ok(extra)
        }
        Command::Baseline {
            input,
            method,
            epochs,
            seed,
            scores,
        } => {
            let graph = load_graph(&input).map_err(|e| e.to_string())?;
            let cfg = BaselineConfig {
                epochs,
                seed,
                ..BaselineConfig::default()
            };
            let mut det = baseline_by_name(&method, cfg)
                .ok_or_else(|| format!("unknown method {method}; try `umgad methods`"))?;
            let s = det.fit_scores(&graph);
            finish_scores(&graph, &s, scores)
        }
        Command::Import {
            attrs,
            relations,
            labels,
            out,
        } => {
            let rels: Vec<(&str, &std::path::Path)> = relations
                .iter()
                .map(|(n, p)| (n.as_str(), p.as_path()))
                .collect();
            let graph = umgad_data::import_graph(&attrs, &rels, labels.as_deref())
                .map_err(|e| e.to_string())?;
            save_graph(&graph, &out).map_err(|e| e.to_string())?;
            Ok(format!(
                "imported {} nodes, {} relations{} -> {}\n",
                graph.num_nodes(),
                graph.num_relations(),
                graph
                    .labels()
                    .map(|l| format!(", {} labelled anomalies", l.iter().filter(|&&b| b).count()))
                    .unwrap_or_default(),
                out.display()
            ))
        }
        Command::Threshold { scores } => {
            let text = std::fs::read_to_string(&scores).map_err(|e| e.to_string())?;
            let s = parse_scores_csv(&text)?;
            let d = select_threshold(&s);
            let flagged: Vec<usize> = s
                .iter()
                .enumerate()
                .filter(|(_, &v)| v >= d.threshold)
                .map(|(i, _)| i)
                .collect();
            let mut out = format!(
                "threshold {:.6} (inflection rank {}, window {})\nflagged {} nodes:\n",
                d.threshold,
                d.inflection,
                d.window,
                flagged.len()
            );
            for i in flagged {
                let _ = writeln!(out, "{i}");
            }
            Ok(out)
        }
        Command::Methods => {
            let mut out = String::from("available baselines:\n");
            for n in method_names() {
                let _ = writeln!(out, "  {n}");
            }
            Ok(out)
        }
    }
}

/// Shape of the `--metrics` JSON report: the process-wide telemetry
/// snapshot (kernel spans, pool/arena counters, loss gauges) plus the
/// per-epoch stats history with phase timings.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsReport {
    /// Global registry snapshot at the end of the run.
    pub telemetry: umgad_rt::telemetry::TelemetryReport,
    /// One entry per completed epoch (restored history included when the
    /// run was resumed from a checkpoint).
    pub epochs: Vec<umgad_core::persist::EpochStatsData>,
}

umgad_rt::json_object!(MetricsReport { telemetry, epochs });

/// Snapshot telemetry + epoch history and write the report atomically. The
/// process's peak RSS lands in the snapshot as the `rss_peak` gauge.
fn write_metrics_report(model: &Umgad, path: &std::path::Path) -> Result<(), String> {
    umgad_rt::telemetry::record_rss_peak();
    let report = MetricsReport {
        telemetry: umgad_rt::telemetry::report(),
        epochs: model.history.iter().map(Into::into).collect(),
    };
    let json = umgad_rt::json::to_string(&report).map_err(|e| e.to_string())?;
    umgad_rt::fs::atomic_write_string(path, &json).map_err(|e| e.to_string())
}

/// Shared tail of detect/baseline: evaluate when labels exist, write or
/// return the CSV.
fn finish_scores(
    graph: &MultiplexGraph,
    s: &[f64],
    path: Option<PathBuf>,
) -> Result<String, String> {
    let csv = scores_csv(s);
    let mut summary = String::new();
    if let Some(labels) = graph.labels() {
        let auc = roc_auc(s, labels);
        let d = select_threshold(s);
        let f1 = umgad_core::macro_f1_at(s, labels, d.threshold);
        let _ = writeln!(
            summary,
            "# AUC {auc:.4}  Macro-F1 {f1:.4} (labels present in input)"
        );
    }
    match path {
        Some(p) => {
            // Bounded deterministic retry: a transient I/O hiccup must not
            // discard a finished training run's scores.
            io_retry("score write", RetryPolicy::default(), || {
                umgad_rt::fs::atomic_write_string(&p, &csv)
            })
            .map_err(|e| e.to_string())?;
            let _ = writeln!(summary, "wrote {}", p.display());
            Ok(summary)
        }
        None => Ok(summary + &csv),
    }
}

/// Crash-recovery supervisor: re-exec this binary's `detect` child with
/// `--supervise` stripped, restarting it after crashes (non-zero exits)
/// up to `max_restarts` times. Each restart auto-resumes from the
/// `--checkpoint-dir` lineage (rolling back past any checkpoint the crash
/// corrupted), so the supervised run converges to the same scores an
/// uninterrupted run produces. Clean exits — completion *or* a graceful
/// stop via `--stop-file` / `--deadline-secs` — end supervision.
pub fn run_supervised(args: &[String], max_restarts: u32) -> Result<String, String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let child_args: Vec<&String> = {
        let mut out = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--supervise" {
                it.next(); // drop its value too
                continue;
            }
            out.push(a);
        }
        out
    };
    let mut restarts = 0u32;
    loop {
        let status = std::process::Command::new(&exe)
            .args(&child_args)
            .status()
            .map_err(|e| format!("supervisor: spawn failed: {e}"))?;
        if status.success() {
            return Ok(format!(
                "supervisor: run finished after {restarts} restart(s)\n"
            ));
        }
        if restarts >= max_restarts {
            return Err(format!(
                "supervisor: child kept failing ({status}); gave up after {restarts} restart(s)"
            ));
        }
        restarts += 1;
        eprintln!("supervisor: child exited with {status}; restart {restarts}/{max_restarts}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_generate() {
        let cmd = parse(&s(&[
            "generate",
            "--dataset",
            "retail",
            "--scale",
            "0.02",
            "--seed",
            "3",
            "--out",
            "g.json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                dataset: DatasetKind::Retail,
                scale: 0.02,
                seed: 3,
                out: "g.json".into()
            }
        );
    }

    #[test]
    fn parse_detect_with_real_flag() {
        let cmd = parse(&s(&["detect", "--input", "g.json", "--real"])).unwrap();
        match cmd {
            Command::Detect {
                real_preset,
                epochs,
                save_model,
                checkpoint,
                checkpoint_every,
                resume,
                ..
            } => {
                assert!(real_preset);
                assert_eq!(epochs, None);
                assert!(save_model.is_none());
                assert!(checkpoint.is_none());
                assert_eq!(checkpoint_every, 0);
                assert!(resume.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_detect_checkpoint_flags() {
        let cmd = parse(&s(&[
            "detect",
            "--input",
            "g.json",
            "--checkpoint",
            "ck.json",
            "--checkpoint-every",
            "2",
            "--epochs",
            "9",
        ]))
        .unwrap();
        match cmd {
            Command::Detect {
                epochs,
                checkpoint,
                checkpoint_every,
                ..
            } => {
                assert_eq!(epochs, Some(9));
                assert_eq!(checkpoint, Some("ck.json".into()));
                assert_eq!(checkpoint_every, 2);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&s(&["detect", "--input", "g.json", "--resume", "ck.json"])).unwrap();
        match cmd {
            Command::Detect { resume, .. } => assert_eq!(resume, Some("ck.json".into())),
            other => panic!("{other:?}"),
        }
        // --checkpoint-every is meaningless without a checkpoint path.
        let err = parse(&s(&[
            "detect",
            "--input",
            "g.json",
            "--checkpoint-every",
            "2",
        ]));
        assert!(err.unwrap_err().contains("--checkpoint"));
    }

    #[test]
    fn parse_detect_lineage_flags() {
        let cmd = parse(&s(&[
            "detect",
            "--input",
            "g.json",
            "--checkpoint-dir",
            "ckpts",
            "--keep",
            "5",
            "--checkpoint-every",
            "2",
            "--stop-file",
            "stop",
            "--deadline-secs",
            "90",
            "--supervise",
            "4",
        ]))
        .unwrap();
        match cmd {
            Command::Detect {
                checkpoint_dir,
                keep,
                stop_file,
                deadline_secs,
                supervise,
                checkpoint_every,
                ..
            } => {
                assert_eq!(checkpoint_dir, Some("ckpts".into()));
                assert_eq!(keep, 5);
                assert_eq!(stop_file, Some("stop".into()));
                assert_eq!(deadline_secs, Some(90));
                assert_eq!(supervise, Some(4));
                assert_eq!(checkpoint_every, 2);
            }
            other => panic!("{other:?}"),
        }
        // Flag interactions that make no sense are rejected.
        let base = ["detect", "--input", "g.json"];
        for bad in [
            vec!["--keep", "2"],
            vec!["--supervise", "3"],
            vec!["--checkpoint", "c.json", "--checkpoint-dir", "d"],
            vec!["--resume", "c.json", "--checkpoint-dir", "d"],
            vec!["--checkpoint-dir", "d", "--keep", "0"],
        ] {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(bad.iter());
            assert!(parse(&s(&args)).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_score_serving_flags() {
        let cmd = parse(&s(&[
            "score",
            "--input",
            "g.json",
            "--model",
            "ckpts",
            "--nodes",
            "ids.txt",
            "--batch",
            "64",
            "--explain",
            "--metrics",
            "m.json",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Score {
                input: "g.json".into(),
                model: "ckpts".into(),
                scores: None,
                nodes: Some("ids.txt".into()),
                all: false,
                batch: Some(64),
                explain: true,
                metrics: Some("m.json".into()),
            }
        );
        let cmd = parse(&s(&[
            "score", "--input", "g.json", "--model", "m.json", "--all",
        ]))
        .unwrap();
        match cmd {
            Command::Score {
                all, nodes, batch, ..
            } => {
                assert!(all && nodes.is_none() && batch.is_none());
            }
            other => panic!("{other:?}"),
        }
        let base = ["score", "--input", "g.json", "--model", "m.json"];
        for bad in [vec!["--nodes", "ids.txt", "--all"], vec!["--batch", "0"]] {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(bad.iter());
            assert!(parse(&s(&args)).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_node_list_validates() {
        let ids = parse_node_list("# header\n3\n\n0\n7\n", 10).unwrap();
        assert_eq!(ids, vec![3, 0, 7]);
        assert!(parse_node_list("12\n", 10).unwrap_err().contains("range"));
        assert!(parse_node_list("abc\n", 10).is_err());
        assert!(parse_node_list("# only comments\n", 10).is_err());
    }

    #[test]
    fn score_serves_subsets_batches_and_explanations() {
        let dir = std::env::temp_dir().join("umgad-cli-serve");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.json");
        let model_path = dir.join("m.json");
        run(Command::Generate {
            dataset: DatasetKind::Alibaba,
            scale: 0.01,
            seed: 9,
            out: graph_path.clone(),
        })
        .unwrap();
        run(Command::Detect {
            input: graph_path.clone(),
            epochs: Some(2),
            seed: 9,
            real_preset: false,
            scores: None,
            save_model: Some(model_path.clone()),
            checkpoint: None,
            checkpoint_every: 0,
            resume: None,
            checkpoint_dir: None,
            keep: DEFAULT_KEEP,
            stop_file: None,
            deadline_secs: None,
            supervise: None,
            metrics: None,
        })
        .unwrap();

        let score = |nodes, batch, explain, metrics| Command::Score {
            input: graph_path.clone(),
            model: model_path.clone(),
            scores: None,
            nodes,
            all: false,
            batch,
            explain,
            metrics,
        };

        // Full-set scoring, batched vs unbatched: identical output.
        let whole = run(score(None, None, false, None)).unwrap();
        let batched = run(score(None, Some(5), false, None)).unwrap();
        assert_eq!(whole, batched, "batch size must never change a score");

        // Subset scoring reports the original node ids.
        let nodes_path = dir.join("ids.txt");
        std::fs::write(&nodes_path, "4\n1\n4\n").unwrap();
        let out = run(score(Some(nodes_path.clone()), Some(2), false, None)).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "node,score");
        assert!(lines[1].starts_with("4,") && lines[2].starts_with("1,"));
        assert_eq!(lines[3], lines[1], "duplicate request rows match");
        // Subset rows carry the same values as the full run.
        assert!(whole.contains(lines[1]), "{out}\nvs\n{whole}");

        // Explanations mention every active view.
        let out = run(score(Some(nodes_path), None, true, None)).unwrap();
        assert!(out.contains("# node 4 score"), "{out}");
        assert!(
            out.contains("attr_z=") && out.contains("struct_z="),
            "{out}"
        );

        // A metrics report captures serve spans and the rss_peak gauge.
        let metrics_path = dir.join("serve-metrics.json");
        let out = run(score(None, Some(7), false, Some(metrics_path.clone()))).unwrap();
        assert!(out.contains("wrote metrics"), "{out}");
        let report: MetricsReport =
            umgad_rt::json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert!(report.telemetry.span("serve.park").is_some());
        assert!(report.telemetry.span("serve.batch").is_some());
        assert!(report.telemetry.counter("serve.nodes").unwrap_or(0) > 0);
        assert!(report.telemetry.gauge("rss_peak").is_some());
        umgad_rt::telemetry::set_enabled(false);
        umgad_rt::telemetry::reset();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_fsck() {
        assert_eq!(
            parse(&s(&["fsck", "ckpts"])).unwrap(),
            Command::Fsck {
                target: "ckpts".into()
            }
        );
        assert!(parse(&s(&["fsck"])).is_err());
        assert!(parse(&s(&["fsck", "a", "b"])).is_err());
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(parse(&s(&["explode"])).is_err());
        assert!(parse(&s(&["generate", "--dataset", "nope", "--out", "x"])).is_err());
        assert!(parse(&s(&["detect"])).is_err());
    }

    #[test]
    fn scores_csv_roundtrip() {
        let scores = vec![0.5, -1.25, 3.0];
        let csv = scores_csv(&scores);
        let back = parse_scores_csv(&csv).unwrap();
        for (a, b) in scores.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn parse_scores_rejects_garbage() {
        assert!(parse_scores_csv("").is_err());
        assert!(parse_scores_csv("node,score\n0,not_a_number").is_err());
    }

    #[test]
    fn baseline_lookup_is_case_insensitive() {
        let cfg = BaselineConfig::fast_test();
        assert!(baseline_by_name("dominant", cfg).is_some());
        assert!(baseline_by_name("DOMINANT", cfg).is_some());
        assert!(baseline_by_name("AnomMAN", cfg).is_some());
        assert!(baseline_by_name("nonexistent", cfg).is_none());
    }

    #[test]
    fn methods_lists_all_22() {
        assert_eq!(method_names().len(), 22);
    }

    #[test]
    fn parse_and_run_import() {
        let dir = std::env::temp_dir().join("umgad-cli-import");
        std::fs::create_dir_all(&dir).unwrap();
        let attrs = dir.join("a.tsv");
        let edges = dir.join("e.tsv");
        let out = dir.join("g.json");
        std::fs::write(&attrs, "1 0\n0 1\n1 1\n").unwrap();
        std::fs::write(&edges, "0 1\n1 2\n").unwrap();
        let cmd = parse(&s(&[
            "import",
            "--attrs",
            attrs.to_str().unwrap(),
            "--relation",
            &format!("follows={}", edges.display()),
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run(cmd).unwrap();
        assert!(msg.contains("3 nodes"), "{msg}");
        let g = umgad_data::load_graph(&out).unwrap();
        assert_eq!(g.layer(0).name(), "follows");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detect_resume_matches_uninterrupted() {
        let dir = std::env::temp_dir().join("umgad-cli-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.json");
        let ckpt_path = dir.join("ck.json");
        let full_csv = dir.join("full.csv");
        let resumed_csv = dir.join("resumed.csv");

        run(Command::Generate {
            dataset: DatasetKind::Alibaba,
            scale: 0.01,
            seed: 5,
            out: graph_path.clone(),
        })
        .unwrap();

        let detect = |epochs, scores, checkpoint, checkpoint_every, resume| Command::Detect {
            input: graph_path.clone(),
            epochs,
            seed: 5,
            real_preset: false,
            scores,
            save_model: None,
            checkpoint,
            checkpoint_every,
            resume,
            checkpoint_dir: None,
            keep: DEFAULT_KEEP,
            stop_file: None,
            deadline_secs: None,
            supervise: None,
            metrics: None,
        };

        // Uninterrupted 4-epoch run.
        run(detect(Some(4), Some(full_csv.clone()), None, 0, None)).unwrap();

        // Stop after 2 epochs (checkpointing), then resume to 4.
        let out = run(detect(Some(2), None, Some(ckpt_path.clone()), 1, None)).unwrap();
        assert!(out.contains("checkpointed"), "{out}");
        let out = run(detect(
            Some(4),
            Some(resumed_csv.clone()),
            None,
            0,
            Some(ckpt_path.clone()),
        ))
        .unwrap();
        assert!(
            out.contains("resumed") && out.contains("epoch 2/4"),
            "{out}"
        );

        let full = std::fs::read_to_string(&full_csv).unwrap();
        let resumed = std::fs::read_to_string(&resumed_csv).unwrap();
        assert_eq!(full, resumed, "resumed scores must be byte-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_generate_detect_threshold() {
        let dir = std::env::temp_dir().join("umgad-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.json");
        let scores_path = dir.join("s.csv");

        let out = run(Command::Generate {
            dataset: DatasetKind::Alibaba,
            scale: 0.01,
            seed: 4,
            out: graph_path.clone(),
        })
        .unwrap();
        assert!(out.contains("nodes"));

        let model_path = dir.join("m.json");
        let out = run(Command::Detect {
            input: graph_path.clone(),
            epochs: Some(3),
            seed: 4,
            real_preset: false,
            scores: Some(scores_path.clone()),
            save_model: Some(model_path.clone()),
            checkpoint: None,
            checkpoint_every: 0,
            resume: None,
            checkpoint_dir: None,
            keep: DEFAULT_KEEP,
            stop_file: None,
            deadline_secs: None,
            supervise: None,
            metrics: None,
        })
        .unwrap();
        assert!(out.contains("AUC"), "labels present => summary: {out}");
        assert!(out.contains("saved model"), "{out}");

        // Score with the saved model: must reproduce the training-time CSV.
        let csv_trained = std::fs::read_to_string(&scores_path).unwrap();
        let out = run(Command::Score {
            input: graph_path.clone(),
            model: model_path.clone(),
            scores: None,
            nodes: None,
            all: false,
            batch: None,
            explain: false,
            metrics: None,
        })
        .unwrap();
        let body = out
            .lines()
            .skip_while(|l| l.starts_with('#'))
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(
            body.trim(),
            csv_trained.trim(),
            "checkpointed scores must match"
        );
        std::fs::remove_file(&model_path).ok();

        let out = run(Command::Threshold {
            scores: scores_path.clone(),
        })
        .unwrap();
        assert!(out.contains("threshold"));
        assert!(out.contains("flagged"));

        let out = run(Command::Baseline {
            input: graph_path.clone(),
            method: "radar".into(),
            epochs: 2,
            seed: 4,
            scores: None,
        })
        .unwrap();
        assert!(out.contains("node,score"));

        std::fs::remove_file(&graph_path).ok();
        std::fs::remove_file(&scores_path).ok();
    }
}
