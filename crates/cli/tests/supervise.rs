//! End-to-end operations tests against the built `umgad` binary:
//! checkpoint lineage, graceful stop, offline fsck, and the crash-recovery
//! supervisor.
//!
//! The quick tests here run on a tiny graph and are part of the normal
//! suite. The full crash-and-corruption matrix — kill at every epoch
//! boundary, corrupt the newest checkpoint before each restart, at
//! `UMGAD_THREADS` ∈ {1, 4}, on an Amazon twin at `Scale::Small` — is
//! `#[ignore]`d for wall-clock and run from `scripts/ci.sh` in release
//! mode (`cargo test --release -p umgad-cli --test supervise -- --ignored`).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn umgad() -> Command {
    Command::new(env!("CARGO_BIN_EXE_umgad"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("umgad-sup-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ok(out: Output, what: &str) -> String {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Generate the tiny graph the quick tests train on.
fn tiny_graph(dir: &Path) -> PathBuf {
    let g = dir.join("g.json");
    ok(
        umgad()
            .args(["generate", "--dataset", "alibaba", "--scale", "0.01"])
            .args(["--seed", "5", "--out"])
            .arg(&g)
            .output()
            .unwrap(),
        "generate",
    );
    g
}

/// The newest `ckpt-*.json` in a lineage directory, by name order.
fn newest_ckpt(dir: &Path) -> Option<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    files.pop()
}

/// Flip one byte a third of the way into a file.
fn corrupt(path: &Path) {
    let mut bytes = std::fs::read(path).unwrap();
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0xA5;
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn fsck_smoke_clean_then_corrupt() {
    let dir = scratch("fsck");
    let g = tiny_graph(&dir);
    let ckpts = dir.join("ckpts");
    let out = ok(
        umgad()
            .args(["detect", "--epochs", "3", "--seed", "5", "--input"])
            .arg(&g)
            .arg("--checkpoint-dir")
            .arg(&ckpts)
            .args(["--checkpoint-every", "1"])
            .output()
            .unwrap(),
        "detect with lineage",
    );
    assert!(out.contains("lineage"), "{out}");

    // Clean directory: exit 0, report says clean, newest entry is epoch 3.
    let fsck = umgad().arg("fsck").arg(&ckpts).output().unwrap();
    let report = ok(fsck, "fsck clean");
    assert!(report.contains("status: clean"), "{report}");
    assert!(
        report.contains("newest valid: ckpt-000003.json (epoch 3)"),
        "{report}"
    );

    // Damage the newest checkpoint: exit 1, report names the failure and
    // falls back to the previous epoch as newest-valid.
    corrupt(&newest_ckpt(&ckpts).expect("lineage wrote checkpoints"));
    let fsck = umgad().arg("fsck").arg(&ckpts).output().unwrap();
    assert!(
        !fsck.status.success(),
        "fsck must exit non-zero on corruption"
    );
    let report = String::from_utf8_lossy(&fsck.stderr);
    assert!(report.contains("FAIL"), "{report}");
    assert!(report.contains("status: CORRUPT"), "{report}");
    assert!(
        report.contains("newest valid: ckpt-000002.json (epoch 2)"),
        "{report}"
    );

    // A single-file target works too.
    let one = ok(
        umgad()
            .arg("fsck")
            .arg(ckpts.join("ckpt-000002.json"))
            .output()
            .unwrap(),
        "fsck single file",
    );
    assert!(one.contains("status: clean"), "{one}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stop_file_stops_cleanly_and_resume_matches_uninterrupted() {
    let dir = scratch("stop");
    let g = tiny_graph(&dir);

    // Uninterrupted reference.
    let ref_csv = dir.join("ref.csv");
    ok(
        umgad()
            .args(["detect", "--epochs", "3", "--seed", "5", "--input"])
            .arg(&g)
            .arg("--scores")
            .arg(&ref_csv)
            .output()
            .unwrap(),
        "reference detect",
    );

    // A pre-existing stop file halts at the first boundary — cleanly
    // (exit 0), with the state checkpointed into the lineage.
    let ckpts = dir.join("ckpts");
    let stop = dir.join("STOP");
    std::fs::write(&stop, "").unwrap();
    let out = ok(
        umgad()
            .args(["detect", "--epochs", "3", "--seed", "5", "--input"])
            .arg(&g)
            .arg("--checkpoint-dir")
            .arg(&ckpts)
            .args(["--checkpoint-every", "1", "--stop-file"])
            .arg(&stop)
            .output()
            .unwrap(),
        "stopped detect",
    );
    assert!(out.contains("stopped (stop-file)"), "{out}");
    assert!(
        newest_ckpt(&ckpts).is_some(),
        "graceful stop must checkpoint"
    );

    // Clearing the sentinel and rerunning auto-resumes and finishes with
    // byte-identical scores.
    std::fs::remove_file(&stop).unwrap();
    let resumed_csv = dir.join("resumed.csv");
    let out = ok(
        umgad()
            .args(["detect", "--epochs", "3", "--seed", "5", "--input"])
            .arg(&g)
            .arg("--checkpoint-dir")
            .arg(&ckpts)
            .args(["--checkpoint-every", "1", "--stop-file"])
            .arg(&stop)
            .arg("--scores")
            .arg(&resumed_csv)
            .output()
            .unwrap(),
        "resumed detect",
    );
    assert!(out.contains("resumed"), "{out}");
    assert_eq!(
        std::fs::read(&ref_csv).unwrap(),
        std::fs::read(&resumed_csv).unwrap(),
        "stop + resume must not change the scores"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_zero_stops_at_first_boundary() {
    let dir = scratch("deadline");
    let g = tiny_graph(&dir);
    let ckpts = dir.join("ckpts");
    let out = ok(
        umgad()
            .args(["detect", "--epochs", "3", "--seed", "5", "--input"])
            .arg(&g)
            .arg("--checkpoint-dir")
            .arg(&ckpts)
            .args(["--deadline-secs", "0"])
            .output()
            .unwrap(),
        "deadline detect",
    );
    assert!(out.contains("stopped (deadline)"), "{out}");
    assert!(
        newest_ckpt(&ckpts).is_some(),
        "deadline stop must checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervisor_recovers_from_repeated_crashes() {
    let dir = scratch("supervise");
    let g = tiny_graph(&dir);

    let ref_csv = dir.join("ref.csv");
    ok(
        umgad()
            .args(["detect", "--epochs", "3", "--seed", "5", "--input"])
            .arg(&g)
            .arg("--scores")
            .arg(&ref_csv)
            .output()
            .unwrap(),
        "reference detect",
    );

    // Every child incarnation dies (injected panic) at its second
    // checkpoint write, so it makes exactly one epoch of durable progress
    // before crashing. The supervisor restarts it until the run converges.
    let ckpts = dir.join("ckpts");
    let sup_csv = dir.join("sup.csv");
    let out = umgad()
        .args(["detect", "--epochs", "3", "--seed", "5", "--input"])
        .arg(&g)
        .arg("--checkpoint-dir")
        .arg(&ckpts)
        .args(["--checkpoint-every", "1", "--supervise", "6"])
        .arg("--scores")
        .arg(&sup_csv)
        .env("UMGAD_FAULT", "persist.write:2:panic")
        .output()
        .unwrap();
    let stdout = ok(out, "supervised detect");
    assert!(stdout.contains("restart"), "{stdout}");
    assert_eq!(
        std::fs::read(&ref_csv).unwrap(),
        std::fs::read(&sup_csv).unwrap(),
        "supervised run must converge to the uninterrupted scores"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full crash-recovery matrix (ci.sh, release mode): at every epoch
/// boundary `k`, a run is killed mid-checkpoint-write by an injected
/// panic; the newest surviving checkpoint is then bit-flipped (so the
/// supervisor's resume must roll back to the last *good* one); a
/// supervised rerun finishes the run. Final scores must be byte-identical
/// to the uninterrupted reference, at 1 and 4 scheduler threads, on an
/// Amazon twin at `Scale::Small` (factor 0.25).
#[test]
#[ignore = "multi-minute matrix; run from scripts/ci.sh in release mode"]
fn supervised_crash_and_corruption_matrix_is_deterministic() {
    const EPOCHS: usize = 4;
    let dir = scratch("matrix");
    let g = dir.join("g.json");
    ok(
        umgad()
            .args(["generate", "--dataset", "amazon", "--scale", "0.25"])
            .args(["--seed", "9", "--out"])
            .arg(&g)
            .output()
            .unwrap(),
        "generate Scale::Small twin",
    );

    for threads in ["1", "4"] {
        let ref_csv = dir.join(format!("ref-t{threads}.csv"));
        ok(
            umgad()
                .args(["detect", "--epochs", "4", "--seed", "9", "--input"])
                .arg(&g)
                .arg("--scores")
                .arg(&ref_csv)
                .env("UMGAD_THREADS", threads)
                .output()
                .unwrap(),
            "reference detect",
        );
        let want = std::fs::read(&ref_csv).unwrap();

        for kill_at in 1..=EPOCHS {
            let ckpts = dir.join(format!("ckpts-t{threads}-k{kill_at}"));

            // Phase 1: crash at the kill_at-th checkpoint boundary.
            let crashed = umgad()
                .args(["detect", "--epochs", "4", "--seed", "9", "--input"])
                .arg(&g)
                .arg("--checkpoint-dir")
                .arg(&ckpts)
                .args(["--checkpoint-every", "1"])
                .env("UMGAD_THREADS", threads)
                .env("UMGAD_FAULT", format!("persist.write:{kill_at}:panic"))
                .output()
                .unwrap();
            assert!(
                !crashed.status.success(),
                "t{threads} k{kill_at}: the injected kill must crash the run"
            );

            // Phase 2: corrupt the newest surviving checkpoint (when one
            // exists — a kill at the first write leaves none).
            let corrupted = newest_ckpt(&ckpts);
            if let Some(p) = &corrupted {
                corrupt(p);
            } else {
                assert_eq!(kill_at, 1, "only the first write can leave no file");
            }

            // Phase 3: supervised recovery — rolls back past the damage,
            // replays the lost epochs, finishes, scores.
            let sup_csv = dir.join(format!("sup-t{threads}-k{kill_at}.csv"));
            let out = umgad()
                .args(["detect", "--epochs", "4", "--seed", "9", "--input"])
                .arg(&g)
                .arg("--checkpoint-dir")
                .arg(&ckpts)
                .args(["--checkpoint-every", "1", "--supervise", "2"])
                .arg("--scores")
                .arg(&sup_csv)
                .env("UMGAD_THREADS", threads)
                .output()
                .unwrap();
            let stdout = ok(out, &format!("t{threads} k{kill_at} supervised rerun"));
            if corrupted.is_some() {
                assert!(
                    stdout.contains("skipped corrupt checkpoint") || kill_at == 1,
                    "t{threads} k{kill_at}: rollback must be reported: {stdout}"
                );
            }
            assert_eq!(
                std::fs::read(&sup_csv).unwrap(),
                want,
                "t{threads} k{kill_at}: supervised scores must be byte-identical"
            );

            // The healed lineage passes fsck.
            let fsck = umgad().arg("fsck").arg(&ckpts).output().unwrap();
            let report = ok(fsck, &format!("t{threads} k{kill_at} fsck"));
            assert!(report.contains("status: clean"), "{report}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
