//! End-to-end tests for the `umgad serve` daemon against the built binary:
//! concurrent clients with interleaved subset/all/explain/info requests
//! must receive frames **byte-identical** to what the in-process
//! [`ScoreService`] answers (which in turn scores bitwise like
//! `score_nodes`), at `UMGAD_THREADS` ∈ {1, 4}; plus stdio pipe mode,
//! admission-limit rejections, the multi-model registry, and net-fault
//! containment (a torn connection must not take the daemon down).

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use umgad_core::{ModelRegistry, ScoreService, ServiceLimits};
use umgad_data::load_graph;

fn umgad() -> Command {
    Command::new(env!("CARGO_BIN_EXE_umgad"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("umgad-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ok(out: std::process::Output, what: &str) -> String {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Generate the tiny graph and train a scoring model on it.
fn graph_and_model(dir: &Path, seed: &str, name: &str) -> (PathBuf, PathBuf) {
    let g = dir.join("g.json");
    if !g.exists() {
        ok(
            umgad()
                .args(["generate", "--dataset", "alibaba", "--scale", "0.01"])
                .args(["--seed", "5", "--out"])
                .arg(&g)
                .output()
                .unwrap(),
            "generate",
        );
    }
    let m = dir.join(name);
    ok(
        umgad()
            .args(["detect", "--input"])
            .arg(&g)
            .args(["--epochs", "2", "--seed", seed, "--save-model"])
            .arg(&m)
            .output()
            .unwrap(),
        "detect",
    );
    (g, m)
}

/// The in-process service the daemon's frames are byte-compared against.
fn inprocess(g: &Path, models: &[&Path], limits: ServiceLimits) -> ScoreService {
    let graph = load_graph(g).unwrap();
    let mut registry = ModelRegistry::new();
    for m in models {
        registry.load(m, &graph).unwrap();
    }
    ScoreService::new(registry, limits)
}

struct Daemon {
    child: Child,
    sock: PathBuf,
    stop: PathBuf,
}

/// Start `umgad serve` on a socket and wait until it accepts connections.
///
/// The child outlives this function by design: every test ends with
/// [`stop_daemon`], which reaps it via `wait_with_output`, and the
/// readiness-timeout path kills and reaps before panicking.
#[allow(clippy::zombie_processes)]
fn start_daemon(
    dir: &Path,
    tag: &str,
    g: &Path,
    models: &[&Path],
    envs: &[(&str, &str)],
    extra: &[&str],
) -> Daemon {
    let sock = dir.join(format!("{tag}.sock"));
    let stop = dir.join(format!("{tag}.stop"));
    let mut cmd = umgad();
    cmd.args(["serve", "--input"]).arg(g);
    for m in models {
        cmd.arg("--model").arg(m);
    }
    cmd.arg("--socket").arg(&sock);
    cmd.arg("--stop-file").arg(&stop);
    cmd.args(extra);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if UnixStream::connect(&sock).is_ok() {
            return Daemon { child, sock, stop };
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("daemon never came up on {tag}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Touch the stop file and collect the daemon's clean-exit stdout.
fn stop_daemon(d: Daemon) -> String {
    std::fs::write(&d.stop, "stop").unwrap();
    let out = d.child.wait_with_output().unwrap();
    assert!(!d.sock.exists(), "socket file must be removed on shutdown");
    ok(out, "serve shutdown")
}

/// One client connection: send each frame, read each response line.
fn roundtrip(sock: &Path, requests: &[String]) -> Vec<String> {
    let stream = UnixStream::connect(sock).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut out = Vec::with_capacity(requests.len());
    for req in requests {
        writer.write_all(req.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "connection closed before answering {req}");
        out.push(line.trim_end_matches('\n').to_string());
    }
    out
}

#[test]
fn daemon_frames_match_inprocess_service_at_thread_widths() {
    let dir = scratch("matrix");
    let (g, m) = graph_and_model(&dir, "9", "m.json");
    let svc = inprocess(&g, &[&m], ServiceLimits::default());
    let n = svc.registry().parked(None).unwrap().num_nodes();
    assert!(n >= 8, "tiny graph still needs a few nodes, got {n}");

    // Three clients with interleaved subset/all/explain/info traffic.
    let clients: Vec<Vec<String>> = vec![
        vec![
            r#"{"op":"nodes","nodes":[0,1,2]}"#.into(),
            r#"{"op":"all"}"#.into(),
            format!(r#"{{"op":"explain","node":{}}}"#, n / 2),
        ],
        vec![
            format!(r#"{{"op":"explain","node":{}}}"#, n - 1),
            format!(r#"{{"op":"nodes","nodes":[{},0,{}]}}"#, n - 1, n / 3),
            r#"{"op":"info"}"#.into(),
        ],
        vec![
            r#"{"op":"all"}"#.into(),
            r#"{"op":"nodes","nodes":[3,3,1]}"#.into(),
            r#"{"op":"all"}"#.into(),
        ],
    ];
    let expected: Vec<Vec<String>> = clients
        .iter()
        .map(|reqs| reqs.iter().map(|r| svc.handle_frame(r)).collect())
        .collect();

    for threads in ["1", "4"] {
        let d = start_daemon(
            &dir,
            &format!("t{threads}"),
            &g,
            &[&m],
            &[("UMGAD_THREADS", threads)],
            &[],
        );
        let got: Vec<Vec<String>> = std::thread::scope(|s| {
            let handles: Vec<_> = clients
                .iter()
                .map(|reqs| s.spawn(|| roundtrip(&d.sock, reqs)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (client, (got, want)) in got.iter().zip(&expected).enumerate() {
            for (req, (g_line, w_line)) in got.iter().zip(want).enumerate() {
                assert_eq!(
                    g_line, w_line,
                    "threads={threads} client={client} request={req}: daemon frame \
                     differs from in-process service"
                );
            }
        }
        let summary = stop_daemon(d);
        assert!(summary.contains("connection(s)"), "{summary}");
    }
}

#[test]
fn stdio_mode_answers_frames_on_stdout() {
    let dir = scratch("stdio");
    let (g, m) = graph_and_model(&dir, "9", "m.json");
    let svc = inprocess(&g, &[&m], ServiceLimits::default());

    let requests = [
        r#"{"op":"nodes","nodes":[1,2]}"#,
        r#"{"op":"info"}"#,
        r#"{"op":"explain","node":0}"#,
        "this is not json",
    ];
    let mut child = umgad()
        .args(["serve", "--input"])
        .arg(&g)
        .arg("--model")
        .arg(&m)
        .arg("--stdio")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    {
        let mut stdin = child.stdin.take().unwrap();
        for r in &requests {
            writeln!(stdin, "{r}").unwrap();
        }
        // Dropping stdin sends EOF: the daemon drains and exits cleanly.
    }
    let out = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "stdio serve failed: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let got: Vec<&str> = stdout.lines().collect();
    assert_eq!(got.len(), requests.len(), "stdout: {stdout}");
    for (req, line) in requests.iter().zip(&got) {
        assert_eq!(*line, svc.handle_frame(req), "request {req}");
    }
    assert!(
        stderr.contains("served 4 request(s) on stdio"),
        "status lines belong on stderr: {stderr}"
    );
}

#[test]
fn admission_limits_and_unknown_models_reject_typed_frames() {
    let dir = scratch("limits");
    let (g, m) = graph_and_model(&dir, "9", "m.json");
    let svc = inprocess(
        &g,
        &[&m],
        ServiceLimits {
            max_inflight: 0,
            max_nodes: 2,
        },
    );

    let requests = [
        r#"{"op":"nodes","nodes":[0,1,2]}"#.to_string(), // over max-nodes
        r#"{"op":"all"}"#.to_string(),                   // whole graph > max-nodes
        r#"{"op":"nodes","model":"ffffffff","nodes":[0]}"#.to_string(),
        r#"{"op":"nodes","nodes":[0,1]}"#.to_string(), // at the limit: served
    ];
    let expected: Vec<String> = requests.iter().map(|r| svc.handle_frame(r)).collect();
    assert!(expected[0].contains("too_many_nodes"), "{}", expected[0]);
    assert!(expected[2].contains("unknown_model"), "{}", expected[2]);
    assert!(
        expected[3].contains("\"kind\":\"scores\""),
        "{}",
        expected[3]
    );

    let d = start_daemon(&dir, "limits", &g, &[&m], &[], &["--max-nodes", "2"]);
    assert_eq!(roundtrip(&d.sock, &requests), expected);
    stop_daemon(d);
}

#[test]
fn multi_model_registry_serves_by_digest() {
    let dir = scratch("multi");
    let (g, m1) = graph_and_model(&dir, "9", "m1.json");
    let (_, m2) = graph_and_model(&dir, "11", "m2.json");
    let svc = inprocess(&g, &[&m1, &m2], ServiceLimits::default());
    let infos = svc.registry().infos();
    assert_eq!(infos.len(), 2, "two distinct models registered");
    let second = infos[1].digest.clone();

    let requests = [
        r#"{"op":"info"}"#.to_string(),
        format!(r#"{{"op":"nodes","model":"{second}","nodes":[0,1]}}"#),
        r#"{"op":"nodes","nodes":[0,1]}"#.to_string(), // default = first model
    ];
    let expected: Vec<String> = requests.iter().map(|r| svc.handle_frame(r)).collect();
    assert_ne!(
        expected[1], expected[2],
        "the two models must answer differently"
    );

    let d = start_daemon(&dir, "multi", &g, &[&m1, &m2], &[], &[]);
    assert_eq!(roundtrip(&d.sock, &requests), expected);
    stop_daemon(d);
}

#[test]
fn torn_connection_is_contained_and_daemon_stays_serviceable() {
    let dir = scratch("fault");
    let (g, m) = graph_and_model(&dir, "9", "m.json");
    let svc = inprocess(&g, &[&m], ServiceLimits::default());
    let req = r#"{"op":"nodes","nodes":[0,1]}"#.to_string();
    let want = svc.handle_frame(&req);

    // The daemon's first response write fails (torn connection). The
    // readiness probe in start_daemon opens connection #1 without writing,
    // so the first *frame* write happens on our victim client.
    let d = start_daemon(
        &dir,
        "fault",
        &g,
        &[&m],
        &[("UMGAD_FAULT", "net.write:1:error")],
        &[],
    );

    let victim = UnixStream::connect(&d.sock).unwrap();
    victim
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(victim.try_clone().unwrap());
    let mut writer = victim;
    writer.write_all(req.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    let n = reader.read_line(&mut line).unwrap();
    assert_eq!(n, 0, "torn connection must close, not answer: {line:?}");

    // The registry is untouched: a fresh client gets the exact frame.
    assert_eq!(roundtrip(&d.sock, std::slice::from_ref(&req)), vec![want]);

    let summary = stop_daemon(d);
    assert!(summary.contains("1 dropped"), "{summary}");
}
